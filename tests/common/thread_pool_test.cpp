#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <stdexcept>
#include <vector>

namespace gprsim::common {
namespace {

TEST(ThreadPool, ExecutesEveryTaskExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> hits(100);
    pool.run(100, [&](int t) { hits[static_cast<std::size_t>(t)].fetch_add(1); });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, IsReusableAcrossManyDispatches) {
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round) {
        pool.run(17, [&](int) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 50 * 17);
}

TEST(ThreadPool, SingleThreadRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    std::vector<int> order;
    pool.run(5, [&](int t) { order.push_back(t); });  // no workers: no data race
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ClampsNonPositiveWidthToOne) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1);
    int runs = 0;
    pool.run(3, [&](int) { ++runs; });
    EXPECT_EQ(runs, 3);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
    ThreadPool pool(2);
    pool.run(0, [&](int) { FAIL() << "task must not run"; });
}

TEST(ThreadPool, PropagatesTaskExceptions) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.run(8,
                          [&](int t) {
                              if (t == 3) {
                                  throw std::runtime_error("boom");
                              }
                          }),
                 std::runtime_error);
    // The pool must stay usable after a failed dispatch.
    std::atomic<int> total{0};
    pool.run(4, [&](int) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, MaxWidthCapsConcurrency) {
    // A pool wider than the requested job width must not over-parallelize:
    // at most `max_width` threads (caller included) may claim tasks.
    ThreadPool pool(8);
    std::atomic<int> active{0};
    std::atomic<int> peak{0};
    pool.run(
        32,
        [&](int) {
            const int now = active.fetch_add(1) + 1;
            int seen = peak.load();
            while (now > seen && !peak.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            active.fetch_sub(1);
        },
        2);
    EXPECT_LE(peak.load(), 2);
    EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
    EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace gprsim::common
