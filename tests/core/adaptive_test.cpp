#include "core/adaptive.hpp"

#include <gtest/gtest.h>

namespace gprsim::core {
namespace {

Parameters adaptive_config(double rate) {
    Parameters p = Parameters::base();
    p.total_channels = 6;
    p.buffer_capacity = 10;
    p.max_gprs_sessions = 4;
    p.call_arrival_rate = rate;
    p.gprs_fraction = 0.4;
    p.traffic.mean_packet_calls = 4.0;
    p.traffic.mean_packets_per_call = 10.0;
    p.traffic.mean_packet_interarrival = 0.2;
    p.traffic.mean_reading_time = 4.0;
    return p;
}

TEST(AdaptiveReservation, MeetsTargetsWhenFeasible) {
    QosTargets targets;
    targets.max_packet_loss = 5e-2;
    targets.max_queueing_delay = 3.0;
    const AdaptationResult result = recommend_reservation(adaptive_config(0.3), targets, 4);
    ASSERT_TRUE(result.feasible);
    EXPECT_LE(result.measures.packet_loss_probability, targets.max_packet_loss);
    EXPECT_LE(result.measures.queueing_delay, targets.max_queueing_delay);
}

TEST(AdaptiveReservation, ChoosesSmallestSufficientReservation) {
    QosTargets loose;
    loose.max_packet_loss = 0.9;
    loose.max_queueing_delay = 1e6;
    const AdaptationResult result = recommend_reservation(adaptive_config(0.3), loose, 4);
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.reserved_pdch, 0) << "loose targets need no reservation";
}

TEST(AdaptiveReservation, RecommendationGrowsWithLoad) {
    QosTargets targets;
    targets.max_packet_loss = 2e-2;
    targets.max_queueing_delay = 2.5;
    const AdaptationResult light = recommend_reservation(adaptive_config(0.1), targets, 5);
    const AdaptationResult heavy = recommend_reservation(adaptive_config(0.8), targets, 5);
    EXPECT_GE(heavy.reserved_pdch, light.reserved_pdch);
}

TEST(AdaptiveReservation, ReportsInfeasibilityWithBestEffort) {
    QosTargets impossible;
    impossible.max_packet_loss = 1e-12;
    impossible.max_queueing_delay = 1e-6;
    const AdaptationResult result =
        recommend_reservation(adaptive_config(1.5), impossible, 3);
    EXPECT_FALSE(result.feasible);
    EXPECT_GE(result.reserved_pdch, 0);
    EXPECT_LE(result.reserved_pdch, 3);
    EXPECT_EQ(result.evaluated, 4);
}

TEST(AdaptiveReservation, VoiceConstraintCapsReservation) {
    // A strict voice-blocking target forbids large reservations even if the
    // data side would like them.
    QosTargets targets;
    targets.max_packet_loss = 1e-12;  // unreachable: forces max search
    targets.max_queueing_delay = 1e-6;
    targets.max_gsm_blocking = 0.3;
    const AdaptationResult result =
        recommend_reservation(adaptive_config(1.0), targets, 4);
    EXPECT_FALSE(result.feasible);
    EXPECT_LE(result.measures.gsm_blocking, 0.3);
}

TEST(AdaptiveReservation, RejectsBadSearchRange) {
    QosTargets targets;
    EXPECT_THROW(recommend_reservation(adaptive_config(0.3), targets, -1),
                 std::invalid_argument);
    EXPECT_THROW(recommend_reservation(adaptive_config(0.3), targets, 6),
                 std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::core
