// Tests for the block-error / ARQ extension (the paper's declared future
// work: "taking into account packet retransmissions that would lead to a
// decrease in overall throughput").
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "sim/simulator.hpp"

namespace gprsim::core {
namespace {

TEST(BlockErrors, EffectiveServiceRateShrinksByBler) {
    Parameters p = Parameters::base();
    const double clean = p.packet_service_rate();
    p.block_error_rate = 0.1;
    EXPECT_NEAR(p.packet_service_rate(), 0.9 * clean, 1e-12);
    p.block_error_rate = 0.0;
    EXPECT_DOUBLE_EQ(p.packet_service_rate(), clean);
}

TEST(BlockErrors, ValidationBoundsBler) {
    Parameters p = Parameters::base();
    p.block_error_rate = -0.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p.block_error_rate = 1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p.block_error_rate = 0.3;
    EXPECT_NO_THROW(p.validate());
}

TEST(BlockErrors, NoisyChannelDegradesModelMeasures) {
    Parameters p = Parameters::base();
    p.total_channels = 4;
    p.reserved_pdch = 1;
    p.buffer_capacity = 8;
    p.max_gprs_sessions = 3;
    p.call_arrival_rate = 0.5;
    p.gprs_fraction = 0.4;
    p.traffic.mean_packet_calls = 3.0;
    p.traffic.mean_packets_per_call = 8.0;
    p.traffic.mean_packet_interarrival = 0.3;
    p.traffic.mean_reading_time = 5.0;

    GprsModel clean(p);
    p.block_error_rate = 0.3;
    GprsModel noisy(p);
    const Measures m_clean = clean.measures();
    const Measures m_noisy = noisy.measures();
    EXPECT_LT(m_noisy.throughput_per_user_kbps, m_clean.throughput_per_user_kbps);
    EXPECT_GT(m_noisy.queueing_delay, m_clean.queueing_delay);
    EXPECT_GE(m_noisy.packet_loss_probability, m_clean.packet_loss_probability - 1e-12);
}

TEST(BlockErrors, SimulatorThroughputDropsWithBler) {
    sim::SimulationConfig config;
    config.cell.total_channels = 4;
    config.cell.reserved_pdch = 1;
    config.cell.buffer_capacity = 10;
    config.cell.max_gprs_sessions = 3;
    config.cell.call_arrival_rate = 0.2;
    config.cell.gprs_fraction = 0.3;
    config.cell.traffic.mean_packet_calls = 3.0;
    config.cell.traffic.mean_packets_per_call = 10.0;
    config.cell.traffic.mean_packet_interarrival = 0.25;
    config.cell.traffic.mean_reading_time = 5.0;
    config.tcp_enabled = false;
    config.seed = 23;
    config.warmup_time = 500.0;
    config.batch_count = 8;
    config.batch_duration = 500.0;

    const sim::SimulationResults clean = sim::NetworkSimulator(config).run();
    config.cell.block_error_rate = 0.4;
    const sim::SimulationResults noisy = sim::NetworkSimulator(config).run();

    // Same offered traffic, ~40% of blocks lost: delivery takes ~1/0.6x
    // longer, so delays grow and per-user throughput falls.
    EXPECT_LT(noisy.throughput_per_user_kbps.mean, clean.throughput_per_user_kbps.mean);
    EXPECT_GT(noisy.queueing_delay.mean, clean.queueing_delay.mean);
}

TEST(BlockErrors, SimulatorMatchesModelUnderBler) {
    // The effective-rate abstraction in the chain must track the block-level
    // ARQ in the simulator (open loop, moderate load).
    Parameters p = Parameters::base();
    p.total_channels = 6;
    p.reserved_pdch = 1;
    p.buffer_capacity = 15;
    p.max_gprs_sessions = 5;
    p.call_arrival_rate = 0.25;
    p.gprs_fraction = 0.3;
    p.mean_gsm_call_duration = 60.0;
    p.mean_gsm_dwell_time = 60.0;
    p.mean_gprs_dwell_time = 60.0;
    p.traffic.mean_packet_calls = 8.0;
    p.traffic.mean_packets_per_call = 12.0;
    p.traffic.mean_packet_interarrival = 0.3;
    p.traffic.mean_reading_time = 4.0;
    p.flow_control_threshold = 1.0;
    p.block_error_rate = 0.2;

    GprsModel model(p);
    const Measures analytic = model.measures();

    sim::SimulationConfig config;
    config.cell = p;
    config.tcp_enabled = false;
    config.seed = 29;
    config.warmup_time = 2000.0;
    config.batch_count = 15;
    config.batch_duration = 2000.0;
    const sim::SimulationResults simulated = sim::NetworkSimulator(config).run();

    EXPECT_NEAR(simulated.carried_data_traffic.mean, analytic.carried_data_traffic,
                3.0 * simulated.carried_data_traffic.half_width + 0.3);
    EXPECT_NEAR(simulated.throughput_per_user_kbps.mean, analytic.throughput_per_user_kbps,
                0.25 * analytic.throughput_per_user_kbps +
                    3.0 * simulated.throughput_per_user_kbps.half_width);
}

}  // namespace
}  // namespace gprsim::core
