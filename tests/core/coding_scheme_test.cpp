#include "core/coding_scheme.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/model.hpp"

namespace gprsim::core {
namespace {

TEST(CodingScheme, RatesMatchGprsSpecification) {
    EXPECT_DOUBLE_EQ(coding_scheme_rate_kbps(CodingScheme::cs1), 9.05);
    EXPECT_DOUBLE_EQ(coding_scheme_rate_kbps(CodingScheme::cs2), 13.4);
    EXPECT_DOUBLE_EQ(coding_scheme_rate_kbps(CodingScheme::cs3), 15.6);
    EXPECT_DOUBLE_EQ(coding_scheme_rate_kbps(CodingScheme::cs4), 21.4);
}

TEST(CodingScheme, PaperUsesCs2) {
    // Table 2: "Transfer rate for one PDCH (CS-2): 13.4 Kbit/s".
    const Parameters base = Parameters::base();
    EXPECT_DOUBLE_EQ(base.pdch_rate_kbps, coding_scheme_rate_kbps(CodingScheme::cs2));
}

TEST(CodingScheme, NamesAreDistinct) {
    EXPECT_EQ(std::string(coding_scheme_name(CodingScheme::cs1)), "CS-1");
    EXPECT_EQ(std::string(coding_scheme_name(CodingScheme::cs4)), "CS-4");
}

TEST(CodingScheme, WithCodingSchemeOnlyChangesRate) {
    const Parameters base = Parameters::base();
    const Parameters cs4 = with_coding_scheme(base, CodingScheme::cs4);
    EXPECT_DOUBLE_EQ(cs4.pdch_rate_kbps, 21.4);
    EXPECT_EQ(cs4.total_channels, base.total_channels);
    EXPECT_EQ(cs4.buffer_capacity, base.buffer_capacity);
    EXPECT_GT(cs4.packet_service_rate(), base.packet_service_rate());
}

TEST(CodingScheme, FasterCodingReducesDelay) {
    // On a congested small cell, CS-4's higher service rate must cut the
    // queueing delay and loss relative to CS-1.
    Parameters p = Parameters::base();
    p.total_channels = 4;
    p.reserved_pdch = 1;
    p.buffer_capacity = 8;
    p.max_gprs_sessions = 3;
    p.call_arrival_rate = 0.5;
    p.gprs_fraction = 0.4;
    p.traffic.mean_packet_calls = 3.0;
    p.traffic.mean_packets_per_call = 8.0;
    p.traffic.mean_packet_interarrival = 0.3;
    p.traffic.mean_reading_time = 5.0;

    GprsModel slow(with_coding_scheme(p, CodingScheme::cs1));
    GprsModel fast(with_coding_scheme(p, CodingScheme::cs4));
    const Measures m_slow = slow.measures();
    const Measures m_fast = fast.measures();
    EXPECT_LT(m_fast.queueing_delay, m_slow.queueing_delay);
    EXPECT_LE(m_fast.packet_loss_probability, m_slow.packet_loss_probability + 1e-12);
    EXPECT_GT(m_fast.throughput_per_user_kbps, m_slow.throughput_per_user_kbps);
}

}  // namespace
}  // namespace gprsim::core
