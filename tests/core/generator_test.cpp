#include "core/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ctmc/gth.hpp"
#include "core/handover.hpp"

namespace gprsim::core {
namespace {

Parameters tiny_config() {
    Parameters p = Parameters::base();
    p.total_channels = 3;
    p.reserved_pdch = 1;
    p.buffer_capacity = 4;
    p.max_gprs_sessions = 2;
    p.call_arrival_rate = 0.3;
    p.gprs_fraction = 0.3;
    // Faster traffic so the chain mixes quickly.
    p.traffic.mean_reading_time = 10.0;
    p.traffic.mean_packet_calls = 2.0;
    p.traffic.mean_packets_per_call = 5.0;
    p.traffic.mean_packet_interarrival = 0.5;
    return p;
}

TEST(GprsGenerator, MatrixFreeRowsMatchCsrRows) {
    const Parameters p = tiny_config();
    const BalancedTraffic balanced = balance_handover(p);
    const GprsGenerator gen(p, balanced.rates);
    const ctmc::QtMatrix qt = gen.to_qt_matrix();

    ASSERT_EQ(qt.size(), gen.size());
    for (common::index_type i = 0; i < gen.size(); ++i) {
        EXPECT_NEAR(qt.diagonal(i), gen.diagonal(i), 1e-13) << "state " << i;
        std::map<common::index_type, double> csr_row;
        qt.for_each_incoming(i, [&](common::index_type j, double rate) {
            csr_row[j] += rate;
        });
        std::map<common::index_type, double> free_row;
        gen.for_each_incoming(i, [&](common::index_type j, double rate) {
            free_row[j] += rate;
        });
        ASSERT_EQ(csr_row.size(), free_row.size()) << "state " << i;
        for (const auto& [j, rate] : csr_row) {
            ASSERT_TRUE(free_row.count(j)) << "state " << i << " pred " << j;
            EXPECT_NEAR(free_row.at(j), rate, 1e-13);
        }
    }
}

TEST(GprsGenerator, GeneratorRowsSumToZero) {
    const Parameters p = tiny_config();
    const GprsGenerator gen(p, balance_handover(p).rates);
    const ctmc::SparseMatrix q = gen.to_generator_matrix();
    for (common::index_type i = 0; i < q.rows(); ++i) {
        double row_sum = 0.0;
        for (double v : q.row_values(i)) {
            row_sum += v;
        }
        EXPECT_NEAR(row_sum, 0.0, 1e-12) << "row " << i;
    }
}

TEST(GprsGenerator, TransposeOfGeneratorMatchesQtMatrix) {
    const Parameters p = tiny_config();
    const GprsGenerator gen(p, balance_handover(p).rates);
    const ctmc::SparseMatrix q = gen.to_generator_matrix();
    const ctmc::SparseMatrix qt_ref = q.transpose();
    const ctmc::QtMatrix qt = gen.to_qt_matrix();
    for (common::index_type i = 0; i < q.rows(); ++i) {
        qt.for_each_incoming(i, [&](common::index_type j, double rate) {
            EXPECT_NEAR(qt_ref.at(i, j), rate, 1e-13);
        });
        EXPECT_NEAR(qt_ref.at(i, i), qt.diagonal(i), 1e-13);
    }
}

TEST(GprsGenerator, SteadyStateMatchesGthGroundTruth) {
    const Parameters p = tiny_config();
    const GprsGenerator gen(p, balance_handover(p).rates);

    const std::vector<double> exact = ctmc::solve_gth(gen.to_generator_matrix());

    ctmc::SolveOptions options;
    options.tolerance = 1e-13;
    const ctmc::SolveResult iterative = ctmc::solve_steady_state(gen.to_qt_matrix(), options);
    ASSERT_TRUE(iterative.converged);
    for (common::index_type i = 0; i < gen.size(); ++i) {
        EXPECT_NEAR(iterative.distribution[static_cast<std::size_t>(i)],
                    exact[static_cast<std::size_t>(i)], 1e-9);
    }

    // Matrix-free path reaches the same fixed point.
    const ctmc::SolveResult matrix_free = ctmc::solve_steady_state(gen, options);
    ASSERT_TRUE(matrix_free.converged);
    for (common::index_type i = 0; i < gen.size(); ++i) {
        EXPECT_NEAR(matrix_free.distribution[static_cast<std::size_t>(i)],
                    exact[static_cast<std::size_t>(i)], 1e-9);
    }
}

TEST(GprsGenerator, MemoryEstimateCoversActualUsage) {
    const Parameters p = tiny_config();
    const GprsGenerator gen(p, balance_handover(p).rates);
    const ctmc::QtMatrix qt = gen.to_qt_matrix();
    EXPECT_GE(gen.estimated_qt_bytes(), qt.memory_bytes() / 2)
        << "estimate should be within a factor of two of reality";
}

}  // namespace
}  // namespace gprsim::core
