#include "core/initial_guess.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/generator.hpp"
#include "core/model.hpp"
#include "queueing/erlang.hpp"

namespace gprsim::core {
namespace {

Parameters guess_config() {
    Parameters p = Parameters::base();
    p.total_channels = 5;
    p.reserved_pdch = 1;
    p.buffer_capacity = 8;
    p.max_gprs_sessions = 4;
    p.call_arrival_rate = 0.4;
    p.gprs_fraction = 0.3;
    p.traffic.mean_reading_time = 6.0;
    p.traffic.mean_packet_calls = 4.0;
    p.traffic.mean_packets_per_call = 8.0;
    p.traffic.mean_packet_interarrival = 0.3;
    return p;
}

TEST(ProductFormInitial, IsAProperDistribution) {
    const Parameters p = guess_config();
    const BalancedTraffic balanced = balance_handover(p);
    const StateSpace space(p.buffer_capacity, p.gsm_channels(), p.max_gprs_sessions);
    const std::vector<double> guess = product_form_initial(p, balanced, space);
    ASSERT_EQ(static_cast<common::index_type>(guess.size()), space.size());
    double sum = 0.0;
    for (double v : guess) {
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ProductFormInitial, MarginalsMatchClosedForms) {
    // The n and (m, r) marginals of the guess are exact by construction.
    const Parameters p = guess_config();
    const BalancedTraffic balanced = balance_handover(p);
    const StateSpace space(p.buffer_capacity, p.gsm_channels(), p.max_gprs_sessions);
    const std::vector<double> guess = product_form_initial(p, balanced, space);

    std::vector<double> marginal_n(static_cast<std::size_t>(p.gsm_channels()) + 1, 0.0);
    std::vector<double> marginal_m(static_cast<std::size_t>(p.max_gprs_sessions) + 1, 0.0);
    space.for_each([&](const State& s, common::index_type i) {
        marginal_n[static_cast<std::size_t>(s.gsm_calls)] += guess[static_cast<std::size_t>(i)];
        marginal_m[static_cast<std::size_t>(s.gprs_sessions)] +=
            guess[static_cast<std::size_t>(i)];
    });
    const std::vector<double> erlang_n =
        queueing::mmcc_distribution(balanced.gsm.offered_load, p.gsm_channels());
    const std::vector<double> erlang_m =
        queueing::mmcc_distribution(balanced.gprs.offered_load, p.max_gprs_sessions);
    for (std::size_t n = 0; n < erlang_n.size(); ++n) {
        EXPECT_NEAR(marginal_n[n], erlang_n[n], 1e-12);
    }
    for (std::size_t m = 0; m < erlang_m.size(); ++m) {
        EXPECT_NEAR(marginal_m[m], erlang_m[m], 1e-12);
    }
}

TEST(ProductFormInitial, CutsIterationsVsUniformStart) {
    const Parameters p = guess_config();
    const BalancedTraffic balanced = balance_handover(p);
    const GprsGenerator generator(p, balanced.rates);
    const ctmc::QtMatrix qt = generator.to_qt_matrix();

    ctmc::SolveOptions uniform;
    uniform.tolerance = 1e-11;
    uniform.check_interval = 1;
    const ctmc::SolveResult from_uniform = ctmc::solve_steady_state(qt, uniform);
    ASSERT_TRUE(from_uniform.converged);

    ctmc::SolveOptions warm = uniform;
    warm.initial = product_form_initial(p, balanced, generator.space());
    const ctmc::SolveResult from_guess = ctmc::solve_steady_state(qt, warm);
    ASSERT_TRUE(from_guess.converged);

    EXPECT_LT(from_guess.iterations, from_uniform.iterations);

    // Same fixed point either way (each solve carries ~5e-9 of residual
    // error, so their difference can reach ~1e-8).
    for (std::size_t i = 0; i < from_guess.distribution.size(); ++i) {
        EXPECT_NEAR(from_guess.distribution[i], from_uniform.distribution[i], 5e-8);
    }
}

TEST(ProductFormInitial, HandlesLargeSessionCountsWithoutUnderflow) {
    // m = 150 exercises the log-space binomial path (p_on^150 ~ 1e-230).
    Parameters p = Parameters::base();
    p.max_gprs_sessions = 150;
    p.buffer_capacity = 5;
    p.call_arrival_rate = 1.0;
    const BalancedTraffic balanced = balance_handover(p);
    const StateSpace space(p.buffer_capacity, p.gsm_channels(), p.max_gprs_sessions);
    const std::vector<double> guess = product_form_initial(p, balanced, space);
    double sum = 0.0;
    for (double v : guess) {
        ASSERT_GE(v, 0.0);
        ASSERT_FALSE(std::isnan(v));
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace gprsim::core
