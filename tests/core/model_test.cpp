#include "core/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include "ctmc/gth.hpp"
#include "queueing/erlang.hpp"

namespace gprsim::core {
namespace {

Parameters test_config() {
    Parameters p = Parameters::base();
    p.total_channels = 4;
    p.reserved_pdch = 1;
    p.buffer_capacity = 6;
    p.max_gprs_sessions = 3;
    p.call_arrival_rate = 0.5;
    p.gprs_fraction = 0.3;
    p.traffic.mean_reading_time = 8.0;
    p.traffic.mean_packet_calls = 3.0;
    p.traffic.mean_packets_per_call = 6.0;
    p.traffic.mean_packet_interarrival = 0.4;
    return p;
}

TEST(GprsModel, DistributionIsProperAndSolveConverges) {
    GprsModel model(test_config());
    const ctmc::SolveResult& result = model.solve();
    EXPECT_TRUE(result.converged);
    double sum = 0.0;
    for (double v : model.distribution()) {
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(GprsModel, GsmMarginalEqualsErlangLaw) {
    // GSM calls have strict priority and are never influenced by data
    // traffic: the n-marginal of the full chain must be exactly the
    // M/M/c/c distribution (paper Eq. 2).
    GprsModel model(test_config());
    model.solve();
    const std::vector<double> marginal = model.gsm_distribution();
    const std::vector<double> erlang = queueing::mmcc_distribution(
        model.balanced().gsm.offered_load, model.parameters().gsm_channels());
    ASSERT_EQ(marginal.size(), erlang.size());
    for (std::size_t n = 0; n < marginal.size(); ++n) {
        EXPECT_NEAR(marginal[n], erlang[n], 1e-8) << "n = " << n;
    }
}

TEST(GprsModel, GprsSessionMarginalEqualsErlangLaw) {
    // Session admission ignores the buffer, so the m-marginal is the
    // M/M/M/M Erlang law (paper Eq. 3).
    GprsModel model(test_config());
    model.solve();
    const std::vector<double> marginal = model.gprs_session_distribution();
    const std::vector<double> erlang = queueing::mmcc_distribution(
        model.balanced().gprs.offered_load, model.parameters().max_gprs_sessions);
    ASSERT_EQ(marginal.size(), erlang.size());
    for (std::size_t m = 0; m < marginal.size(); ++m) {
        EXPECT_NEAR(marginal[m], erlang[m], 1e-8) << "m = " << m;
    }
}

TEST(GprsModel, MeasuresAreConsistent) {
    GprsModel model(test_config());
    const Measures measures = model.measures();

    EXPECT_GE(measures.carried_data_traffic, 0.0);
    EXPECT_LE(measures.carried_data_traffic, model.parameters().total_channels);
    EXPECT_GE(measures.packet_loss_probability, 0.0);
    EXPECT_LE(measures.packet_loss_probability, 1.0);
    EXPECT_GE(measures.queueing_delay, 0.0);
    EXPECT_GE(measures.mean_queue_length, 0.0);
    EXPECT_LE(measures.mean_queue_length, model.parameters().buffer_capacity);

    // Eq. 11: ATU * AGS = throughput.
    EXPECT_NEAR(measures.throughput_per_user_kbps * measures.average_gprs_sessions,
                measures.data_throughput_kbps, 1e-9);
    // Eq. 10: QD * throughput = MQL (Little's law).
    EXPECT_NEAR(measures.queueing_delay * measures.carried_data_traffic *
                    model.balanced().rates.service_rate,
                measures.mean_queue_length, 1e-9);
    // Closed-form blocking matches the marginal's last state.
    const std::vector<double> m_marginal = model.gprs_session_distribution();
    EXPECT_NEAR(measures.gprs_blocking, m_marginal.back(), 1e-8);
    const std::vector<double> n_marginal = model.gsm_distribution();
    EXPECT_NEAR(measures.gsm_blocking, n_marginal.back(), 1e-8);
}

TEST(GprsModel, ThroughputBalancesOfferedMinusLost) {
    // In steady state: accepted rate = departure rate, so
    // lambda_avg * (1 - PLP) = CDT * mu_service (this is Eq. 9 rearranged;
    // checking it guards the offered-rate accounting).
    GprsModel model(test_config());
    const Measures measures = model.measures();
    const double throughput =
        measures.carried_data_traffic * model.balanced().rates.service_rate;
    EXPECT_NEAR(measures.offered_packet_rate * (1.0 - measures.packet_loss_probability),
                throughput, 1e-8);
}

TEST(GprsModel, ClosedFormNeedsNoSolve) {
    GprsModel model(test_config());
    const Measures closed = model.closed_form();
    EXPECT_FALSE(model.solved());
    EXPECT_GT(closed.carried_voice_traffic, 0.0);
    EXPECT_GT(closed.average_gprs_sessions, 0.0);
}

TEST(GprsModel, DistributionBeforeSolveThrows) {
    GprsModel model(test_config());
    EXPECT_THROW(model.distribution(), std::logic_error);
}

// ---------------------------------------------------------------------------
// The paper's aggregation argument (Section 4.1): m identical two-state IPPs
// may be replaced by one (m+1)-state MMPP. We verify the claim end to end by
// building the UNAGGREGATED chain, whose state tracks each session slot
// individually (0 = inactive, 1 = ON, 2 = OFF), and comparing its lumped
// stationary distribution with the aggregated model's.
// ---------------------------------------------------------------------------

struct FullState {
    int k = 0;
    int n = 0;
    int r1 = 0;  // slot states: 0 inactive, 1 ON, 2 OFF
    int r2 = 0;
};

TEST(GprsModel, AggregationMatchesPerSessionChain) {
    Parameters p = test_config();
    p.max_gprs_sessions = 2;
    const BalancedTraffic balanced = balance_handover(p);
    const ModelRates& rates = balanced.rates;

    // --- enumerate the unaggregated chain --------------------------------
    const int kmax = p.buffer_capacity;
    const int nmax = p.gsm_channels();
    const auto full_index = [&](const FullState& s) {
        return ((s.k * (nmax + 1) + s.n) * 3 + s.r1) * 3 + s.r2;
    };
    const int total = (kmax + 1) * (nmax + 1) * 9;

    std::vector<double> q(static_cast<std::size_t>(total) * static_cast<std::size_t>(total),
                          0.0);
    const auto add = [&](const FullState& from, const FullState& to, double rate) {
        q[static_cast<std::size_t>(full_index(from)) * static_cast<std::size_t>(total) +
          static_cast<std::size_t>(full_index(to))] += rate;
    };

    const double p_on = rates.on_admission_probability();
    for (int k = 0; k <= kmax; ++k) {
        for (int n = 0; n <= nmax; ++n) {
            for (int r1 = 0; r1 < 3; ++r1) {
                for (int r2 = 0; r2 < 3; ++r2) {
                    const FullState s{k, n, r1, r2};
                    const int active = (r1 != 0) + (r2 != 0);
                    const int on = (r1 == 1) + (r2 == 1);
                    // GSM arrivals/departures.
                    if (n < nmax) {
                        add(s, {k, n + 1, r1, r2}, rates.gsm_arrival);
                    }
                    if (n > 0) {
                        add(s, {k, n - 1, r1, r2}, n * rates.gsm_departure);
                    }
                    // GPRS arrival: occupies each inactive slot with equal
                    // probability (slots are exchangeable).
                    const int inactive = 2 - active;
                    if (inactive > 0) {
                        const double per_slot = rates.gprs_arrival / inactive;
                        if (r1 == 0) {
                            add(s, {k, n, 1, r2}, per_slot * p_on);
                            add(s, {k, n, 2, r2}, per_slot * (1.0 - p_on));
                        }
                        if (r2 == 0) {
                            add(s, {k, n, r1, 1}, per_slot * p_on);
                            add(s, {k, n, r1, 2}, per_slot * (1.0 - p_on));
                        }
                    }
                    // GPRS departures: every active slot leaves at mu.
                    if (r1 != 0) {
                        add(s, {k, n, 0, r2}, rates.gprs_departure);
                    }
                    if (r2 != 0) {
                        add(s, {k, n, r1, 0}, rates.gprs_departure);
                    }
                    // IPP flips per slot.
                    if (r1 == 1) {
                        add(s, {k, n, 2, r2}, rates.on_to_off);
                    }
                    if (r1 == 2) {
                        add(s, {k, n, 1, r2}, rates.off_to_on);
                    }
                    if (r2 == 1) {
                        add(s, {k, n, r1, 2}, rates.on_to_off);
                    }
                    if (r2 == 2) {
                        add(s, {k, n, r1, 1}, rates.off_to_on);
                    }
                    // Packet arrivals: flow-controlled exactly as Table 1,
                    // with (m - r) replaced by the per-slot ON count.
                    if (k < kmax && on > 0) {
                        const double full_rate = on * rates.packet_rate;
                        const int used = std::min(p.total_channels - n, 8 * k);
                        const double service = used * rates.service_rate;
                        const double rate = k <= p.flow_control_onset()
                                                ? full_rate
                                                : std::min(full_rate, service);
                        if (rate > 0.0) {
                            add(s, {k + 1, n, r1, r2}, rate);
                        }
                    }
                    // Packet service.
                    const int used = std::min(p.total_channels - n, 8 * k);
                    if (used > 0) {
                        add(s, {k - 1, n, r1, r2}, used * rates.service_rate);
                    }
                }
            }
        }
    }

    const std::vector<double> full_pi = ctmc::solve_gth_dense(std::move(q), total);

    // --- lump onto (k, n, m, r) and compare --------------------------------
    GprsModel model(p);
    model.solve();
    const std::vector<double>& agg_pi = model.distribution();
    const StateSpace& space = model.space();

    std::map<std::tuple<int, int, int, int>, double> lumped;
    for (int k = 0; k <= kmax; ++k) {
        for (int n = 0; n <= nmax; ++n) {
            for (int r1 = 0; r1 < 3; ++r1) {
                for (int r2 = 0; r2 < 3; ++r2) {
                    const int m = (r1 != 0) + (r2 != 0);
                    const int off = (r1 == 2) + (r2 == 2);
                    lumped[{k, n, m, off}] +=
                        full_pi[static_cast<std::size_t>(full_index({k, n, r1, r2}))];
                }
            }
        }
    }

    space.for_each([&](const State& s, common::index_type i) {
        const double expected =
            lumped[{s.buffer, s.gsm_calls, s.gprs_sessions, s.off_sessions}];
        EXPECT_NEAR(agg_pi[static_cast<std::size_t>(i)], expected, 1e-8)
            << "(k,n,m,r) = (" << s.buffer << "," << s.gsm_calls << ","
            << s.gprs_sessions << "," << s.off_sessions << ")";
    });
}

}  // namespace
}  // namespace gprsim::core
