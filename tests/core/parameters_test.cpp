#include "core/parameters.hpp"

#include <gtest/gtest.h>

namespace gprsim::core {
namespace {

TEST(Parameters, BaseSettingMatchesTable2) {
    const Parameters p = Parameters::base();
    EXPECT_EQ(p.total_channels, 20);
    EXPECT_EQ(p.reserved_pdch, 1);
    EXPECT_EQ(p.buffer_capacity, 100);
    EXPECT_DOUBLE_EQ(p.pdch_rate_kbps, 13.4);
    EXPECT_DOUBLE_EQ(p.mean_gsm_call_duration, 120.0);
    EXPECT_DOUBLE_EQ(p.mean_gsm_dwell_time, 60.0);
    EXPECT_DOUBLE_EQ(p.mean_gprs_dwell_time, 120.0);
    EXPECT_DOUBLE_EQ(p.gprs_fraction, 0.05);
    EXPECT_NO_THROW(p.validate());
}

TEST(Parameters, DerivedRates) {
    Parameters p = Parameters::base();
    p.call_arrival_rate = 1.0;
    EXPECT_EQ(p.gsm_channels(), 19);
    EXPECT_NEAR(p.gsm_arrival_rate(), 0.95, 1e-12);
    EXPECT_NEAR(p.gprs_arrival_rate(), 0.05, 1e-12);
    EXPECT_NEAR(p.gsm_completion_rate(), 1.0 / 120.0, 1e-15);
    EXPECT_NEAR(p.gsm_handover_rate(), 1.0 / 60.0, 1e-15);
    EXPECT_NEAR(p.gprs_handover_rate(), 1.0 / 120.0, 1e-15);
    // mu_service = 13.4 kbit/s / 3840 bit = 3.4896 packets/s.
    EXPECT_NEAR(p.packet_service_rate(), 13400.0 / 3840.0, 1e-12);
    // Traffic model 1: session duration 2122.5 s.
    EXPECT_NEAR(p.gprs_completion_rate(), 1.0 / 2122.5, 1e-15);
}

TEST(Parameters, FlowControlOnset) {
    Parameters p = Parameters::base();
    EXPECT_EQ(p.flow_control_onset(), 70);  // floor(0.7 * 100)
    p.flow_control_threshold = 1.0;
    EXPECT_EQ(p.flow_control_onset(), 100);  // no flow control
    p.flow_control_threshold = 0.333;
    EXPECT_EQ(p.flow_control_onset(), 33);
}

TEST(Parameters, WithTrafficModelAppliesPresetAndM) {
    const Parameters p = Parameters::with_traffic_model(traffic::traffic_model_3());
    EXPECT_EQ(p.max_gprs_sessions, 20);
    EXPECT_NEAR(p.traffic.mean_session_duration(), 312.5, 1e-9);
}

TEST(Parameters, ValidationCatchesInconsistencies) {
    Parameters p = Parameters::base();
    p.reserved_pdch = 21;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Parameters::base();
    p.reserved_pdch = 20;  // leaves zero GSM channels
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Parameters::base();
    p.call_arrival_rate = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Parameters::base();
    p.gprs_fraction = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Parameters::base();
    p.flow_control_threshold = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Parameters::base();
    p.flow_control_threshold = 1.2;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = Parameters::base();
    p.buffer_capacity = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Parameters, ZeroReservedPdchIsValid) {
    // Figs. 11-13 include the "0 reserved PDCH" configuration.
    Parameters p = Parameters::base();
    p.reserved_pdch = 0;
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.gsm_channels(), 20);
}

}  // namespace
}  // namespace gprsim::core
