// Parameterized property sweeps over model configurations: structural
// invariants that must hold for EVERY valid parameterization, checked across
// a grid of small-but-diverse cells (reservation levels, buffer sizes,
// session caps, flow-control thresholds, traffic mixes).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/model.hpp"
#include "queueing/erlang.hpp"

namespace gprsim::core {
namespace {

struct ConfigCase {
    std::string label;
    int total_channels;
    int reserved_pdch;
    int buffer_capacity;
    int max_gprs_sessions;
    double call_arrival_rate;
    double gprs_fraction;
    double eta;
};

Parameters make_parameters(const ConfigCase& c) {
    Parameters p = Parameters::base();
    p.total_channels = c.total_channels;
    p.reserved_pdch = c.reserved_pdch;
    p.buffer_capacity = c.buffer_capacity;
    p.max_gprs_sessions = c.max_gprs_sessions;
    p.call_arrival_rate = c.call_arrival_rate;
    p.gprs_fraction = c.gprs_fraction;
    p.flow_control_threshold = c.eta;
    // Quick-mixing traffic keeps the solves fast in the sweep.
    p.traffic.mean_packet_calls = 3.0;
    p.traffic.mean_packets_per_call = 6.0;
    p.traffic.mean_packet_interarrival = 0.4;
    p.traffic.mean_reading_time = 6.0;
    return p;
}

class ModelProperties : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ModelProperties, InvariantsHold) {
    const Parameters p = make_parameters(GetParam());
    GprsModel model(p);
    ctmc::SolveOptions options;
    options.tolerance = 1e-11;
    model.solve(options);
    const Measures m = model.measures();

    // Probabilities are probabilities.
    EXPECT_GE(m.packet_loss_probability, 0.0);
    EXPECT_LE(m.packet_loss_probability, 1.0);
    EXPECT_GE(m.gsm_blocking, 0.0);
    EXPECT_LE(m.gsm_blocking, 1.0);
    EXPECT_GE(m.gprs_blocking, 0.0);
    EXPECT_LE(m.gprs_blocking, 1.0);

    // Physical bounds.
    EXPECT_GE(m.carried_data_traffic, 0.0);
    EXPECT_LE(m.carried_data_traffic, p.total_channels + 1e-9);
    EXPECT_GE(m.carried_voice_traffic, 0.0);
    EXPECT_LE(m.carried_voice_traffic, p.gsm_channels() + 1e-9);
    EXPECT_GE(m.mean_queue_length, 0.0);
    EXPECT_LE(m.mean_queue_length, p.buffer_capacity + 1e-9);
    EXPECT_GE(m.average_gprs_sessions, 0.0);
    EXPECT_LE(m.average_gprs_sessions, p.max_gprs_sessions + 1e-9);

    // Distribution is proper.
    double sum = 0.0;
    for (double v : model.distribution()) {
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // GSM marginal equals the Erlang law regardless of configuration
    // (voice has absolute priority).
    const std::vector<double> marginal = model.gsm_distribution();
    const std::vector<double> erlang =
        queueing::mmcc_distribution(model.balanced().gsm.offered_load, p.gsm_channels());
    for (std::size_t n = 0; n < marginal.size(); ++n) {
        EXPECT_NEAR(marginal[n], erlang[n], 1e-7) << "n = " << n;
    }

    // Flow conservation: accepted packets = served packets (Eq. 9).
    const double throughput = m.carried_data_traffic * model.balanced().rates.service_rate;
    EXPECT_NEAR(m.offered_packet_rate * (1.0 - m.packet_loss_probability), throughput,
                1e-7 * std::max(1.0, m.offered_packet_rate));
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, ModelProperties,
    ::testing::Values(
        ConfigCase{"base_small", 4, 1, 6, 3, 0.4, 0.2, 0.7},
        ConfigCase{"no_reservation", 4, 0, 6, 3, 0.4, 0.2, 0.7},
        ConfigCase{"heavy_reservation", 6, 3, 6, 3, 0.4, 0.2, 0.7},
        ConfigCase{"no_flow_control", 4, 1, 6, 3, 0.4, 0.2, 1.0},
        ConfigCase{"early_throttle", 4, 1, 6, 3, 0.4, 0.2, 0.3},
        ConfigCase{"tiny_buffer", 4, 1, 1, 3, 0.4, 0.2, 1.0},
        ConfigCase{"overload", 4, 1, 6, 3, 3.0, 0.3, 0.7},
        ConfigCase{"light_load", 4, 1, 6, 3, 0.02, 0.2, 0.7},
        ConfigCase{"gprs_heavy_mix", 4, 1, 6, 4, 0.4, 0.8, 0.7},
        ConfigCase{"single_session", 4, 1, 6, 1, 0.4, 0.2, 0.7}),
    [](const auto& info) { return info.param.label; });

// --- monotonicity properties across configurations ------------------------

TEST(ModelMonotonicity, ReservingPdchsReducesLossAndDelay) {
    Measures previous;
    bool first = true;
    for (int pdch : {0, 1, 2}) {
        ConfigCase c{"", 5, pdch, 8, 3, 0.6, 0.3, 0.7};
        GprsModel model(make_parameters(c));
        const Measures m = model.measures();
        if (!first) {
            EXPECT_LE(m.packet_loss_probability, previous.packet_loss_probability + 1e-9)
                << "PDCH " << pdch;
            EXPECT_LE(m.queueing_delay, previous.queueing_delay + 1e-9) << "PDCH " << pdch;
        }
        previous = m;
        first = false;
    }
}

TEST(ModelMonotonicity, LoadIncreasesBlockingAndLoss) {
    Measures previous;
    bool first = true;
    for (double rate : {0.2, 0.6, 1.4}) {
        ConfigCase c{"", 4, 1, 6, 3, rate, 0.3, 0.7};
        GprsModel model(make_parameters(c));
        const Measures m = model.measures();
        if (!first) {
            EXPECT_GE(m.gsm_blocking, previous.gsm_blocking);
            EXPECT_GE(m.gprs_blocking, previous.gprs_blocking);
            EXPECT_GE(m.packet_loss_probability, previous.packet_loss_probability - 1e-9);
        }
        previous = m;
        first = false;
    }
}

TEST(ModelMonotonicity, FlowControlReducesLoss) {
    // Stronger throttling (smaller eta) cannot increase buffer overflow.
    Measures previous;
    bool first = true;
    for (double eta : {1.0, 0.7, 0.4}) {
        ConfigCase c{"", 4, 1, 6, 3, 0.8, 0.4, eta};
        GprsModel model(make_parameters(c));
        const Measures m = model.measures();
        if (!first) {
            EXPECT_LE(m.packet_loss_probability, previous.packet_loss_probability + 1e-9)
                << "eta " << eta;
        }
        previous = m;
        first = false;
    }
}

TEST(ModelMonotonicity, BiggerBufferReducesLossButGrowsDelay) {
    Measures previous;
    bool first = true;
    for (int capacity : {2, 6, 12}) {
        ConfigCase c{"", 4, 1, capacity, 3, 0.8, 0.4, 1.0};
        GprsModel model(make_parameters(c));
        const Measures m = model.measures();
        if (!first) {
            EXPECT_LE(m.packet_loss_probability, previous.packet_loss_probability + 1e-9);
            EXPECT_GE(m.queueing_delay, previous.queueing_delay - 1e-9);
        }
        previous = m;
        first = false;
    }
}

}  // namespace
}  // namespace gprsim::core
