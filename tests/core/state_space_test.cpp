#include "core/state_space.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace gprsim::core {
namespace {

TEST(StateSpace, SizeMatchesPaperFormula) {
    // (M+1)(M+2)/2 * (N_GSM+1) * (K+1), paper Section 4.1.
    const StateSpace space(100, 19, 50);
    EXPECT_EQ(space.size(),
              static_cast<common::index_type>(51) * 52 / 2 * 20 * 101);
    EXPECT_EQ(space.session_pair_count(), 51 * 52 / 2);
}

TEST(StateSpace, PaperBaseConfigurationStateCount) {
    // The base setting (Table 2 + traffic model 1) has ~2.68 million states.
    const StateSpace space(100, 19, 50);
    EXPECT_EQ(space.size(), 2678520);
}

TEST(StateSpace, RoundTripIsExhaustive) {
    const StateSpace space(5, 3, 4);
    common::index_type count = 0;
    space.for_each([&](const State& s, common::index_type index) {
        EXPECT_EQ(space.index_of(s), index);
        const State back = space.state_of(index);
        EXPECT_EQ(back, s);
        EXPECT_LE(s.off_sessions, s.gprs_sessions);
        ++count;
    });
    EXPECT_EQ(count, space.size());
}

TEST(StateSpace, IndicesAreDenseAndOrdered) {
    const StateSpace space(2, 2, 2);
    common::index_type previous = -1;
    space.for_each([&](const State&, common::index_type index) {
        EXPECT_EQ(index, previous + 1);
        previous = index;
    });
    EXPECT_EQ(previous, space.size() - 1);
}

TEST(StateSpace, StateOfHandlesLargeTriangularIndices) {
    // The sqrt-based inversion must be exact even for large m.
    const StateSpace space(0, 0, 500);
    for (int m : {0, 1, 2, 99, 100, 499, 500}) {
        for (int r : {0, m / 2, m}) {
            const State s{0, 0, m, r};
            EXPECT_EQ(space.state_of(space.index_of(s)), s) << "m=" << m << " r=" << r;
        }
    }
}

TEST(StateSpace, DegenerateDimensionsWork) {
    // M = 0 (no GPRS) still forms a valid chain over (k, n).
    const StateSpace space(3, 2, 0);
    EXPECT_EQ(space.size(), 4 * 3 * 1);
    const State s{2, 1, 0, 0};
    EXPECT_EQ(space.state_of(space.index_of(s)), s);
}

TEST(StateSpace, QbdLevelOrderingIsIdentityForTheNaturalCodec) {
    // The codec already enumerates states with the buffer level as the
    // outermost (slowest) digit, so the QBD level ordering the model layer
    // requests degenerates to the identity — stable_sort on the buffer
    // level must not move anything. The solver engine detects this and
    // skips the reindexing entirely; this test pins the convention so a
    // future codec change surfaces as a failure here instead of a silent
    // permutation cost.
    const StateSpace space(4, 3, 5);
    const std::vector<common::index_type> order = qbd_level_ordering(space);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(space.size()));
    for (std::size_t p = 0; p < order.size(); ++p) {
        EXPECT_EQ(order[p], static_cast<common::index_type>(p));
    }
    // And the levels really are contiguous under that order.
    common::index_type previous_level = 0;
    for (common::index_type i = 0; i < space.size(); ++i) {
        const common::index_type level = space.state_of(i).buffer;
        EXPECT_GE(level, previous_level);
        previous_level = level;
    }
}

TEST(StateSpace, RejectsNegativeDimensions) {
    EXPECT_THROW(StateSpace(-1, 2, 2), std::invalid_argument);
    EXPECT_THROW(StateSpace(2, -1, 2), std::invalid_argument);
    EXPECT_THROW(StateSpace(2, 2, -1), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::core
