// Model-layer parallel sweep tests: sharded independent points and
// heterogeneous scenario batches must reproduce the serial results.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/model.hpp"
#include "core/sweep.hpp"
#include "ctmc/engine.hpp"

namespace gprsim::core {
namespace {

Parameters small_config() {
    Parameters p = Parameters::base();
    p.total_channels = 4;
    p.reserved_pdch = 1;
    p.buffer_capacity = 6;
    p.max_gprs_sessions = 3;
    p.gprs_fraction = 0.3;
    p.traffic.mean_reading_time = 8.0;
    p.traffic.mean_packet_calls = 3.0;
    p.traffic.mean_packets_per_call = 6.0;
    p.traffic.mean_packet_interarrival = 0.4;
    return p;
}

TEST(ParallelSweep, MatchesSerialSweepPointwise) {
    const std::vector<double> rates{0.2, 0.35, 0.5, 0.65, 0.8, 0.95, 1.1};
    SweepOptions serial;
    const auto expected = sweep_call_arrival_rate(small_config(), rates, serial);

    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);
    SweepOptions parallel;
    parallel.parallel_points = true;
    parallel.num_threads = 3;
    const auto points = sweeps.call_arrival_rate(small_config(), rates, parallel);

    ASSERT_EQ(points.size(), expected.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        EXPECT_DOUBLE_EQ(points[i].call_arrival_rate, rates[i]);
        EXPECT_GT(points[i].iterations, 0);
        // Warm-start chains restart at shard boundaries, so the iterates
        // differ in the last ulps; the measures must agree far tighter
        // than any figure resolution.
        EXPECT_NEAR(points[i].measures.carried_data_traffic,
                    expected[i].measures.carried_data_traffic, 1e-8);
        EXPECT_NEAR(points[i].measures.gsm_blocking, expected[i].measures.gsm_blocking,
                    1e-8);
        EXPECT_NEAR(points[i].measures.packet_loss_probability,
                    expected[i].measures.packet_loss_probability, 1e-8);
    }
}

TEST(ParallelSweep, ProgressFiresOncePerPoint) {
    const std::vector<double> rates{0.2, 0.4, 0.6, 0.8};
    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);
    SweepOptions options;
    options.parallel_points = true;
    options.num_threads = 2;
    std::vector<std::size_t> seen;
    options.progress = [&](std::size_t idx, const SweepPoint&) { seen.push_back(idx); };
    sweeps.call_arrival_rate(small_config(), rates, options);
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ParallelSweep, MoreThreadsThanPointsIsFine) {
    const std::vector<double> rates{0.3, 0.6};
    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);
    SweepOptions options;
    options.parallel_points = true;
    options.num_threads = 8;
    const auto points = sweeps.call_arrival_rate(small_config(), rates, options);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_GT(points[0].measures.carried_data_traffic, 0.0);
    EXPECT_GT(points[1].measures.gsm_blocking, points[0].measures.gsm_blocking);
}

TEST(ParallelSweep, EmptyGridReturnsEmpty) {
    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);
    SweepOptions options;
    options.parallel_points = true;
    options.num_threads = 4;
    EXPECT_TRUE(sweeps.call_arrival_rate(small_config(), {}, options).empty());
}

TEST(ScenarioBatch, MatchesIndividualSolves) {
    // Heterogeneous batch: PDCH reservation, GPRS share, and buffer size
    // all vary, so every scenario has its own state space.
    std::vector<Parameters> scenarios;
    for (int pdch : {1, 2}) {
        for (double fraction : {0.2, 0.4}) {
            Parameters p = small_config();
            p.reserved_pdch = pdch;
            p.gprs_fraction = fraction;
            p.buffer_capacity = 5 + pdch;
            scenarios.push_back(p);
        }
    }

    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);
    SweepOptions options;
    options.num_threads = 3;
    const auto points = sweeps.sweep_scenarios(scenarios, options);

    ASSERT_EQ(points.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        EXPECT_EQ(points[i].parameters.reserved_pdch, scenarios[i].reserved_pdch);
        GprsModel model(scenarios[i]);
        const Measures expected = model.measures();
        EXPECT_NEAR(points[i].measures.carried_data_traffic,
                    expected.carried_data_traffic, 1e-9);
        EXPECT_NEAR(points[i].measures.gsm_blocking, expected.gsm_blocking, 1e-9);
        EXPECT_NEAR(points[i].measures.throughput_per_user_kbps,
                    expected.throughput_per_user_kbps, 1e-7);
        EXPECT_GT(points[i].iterations, 0);
    }
}

TEST(ScenarioBatch, SerialAndParallelAgree) {
    std::vector<Parameters> scenarios;
    for (double rate : {0.3, 0.5, 0.7}) {
        Parameters p = small_config();
        p.call_arrival_rate = rate;
        scenarios.push_back(p);
    }
    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);
    SweepOptions serial;
    serial.num_threads = 1;
    SweepOptions parallel;
    parallel.num_threads = 4;
    const auto a = sweeps.sweep_scenarios(scenarios, serial);
    const auto b = sweeps.sweep_scenarios(scenarios, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Identical solver options and warm starts: bitwise equal.
        EXPECT_EQ(a[i].iterations, b[i].iterations);
        EXPECT_EQ(a[i].measures.carried_data_traffic, b[i].measures.carried_data_traffic);
    }
}

TEST(ScenarioBatch, FreeFunctionUsesDefaultEngine) {
    std::vector<Parameters> scenarios{small_config()};
    SweepOptions options;
    options.num_threads = 2;
    const auto points = sweep_scenarios(scenarios, options);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_GT(points[0].measures.carried_data_traffic, 0.0);
}

}  // namespace
}  // namespace gprsim::core
