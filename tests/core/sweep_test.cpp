#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gprsim::core {
namespace {

Parameters sweep_config() {
    Parameters p = Parameters::base();
    p.total_channels = 4;
    p.reserved_pdch = 1;
    p.buffer_capacity = 6;
    p.max_gprs_sessions = 3;
    p.gprs_fraction = 0.3;
    p.traffic.mean_reading_time = 8.0;
    p.traffic.mean_packet_calls = 3.0;
    p.traffic.mean_packets_per_call = 6.0;
    p.traffic.mean_packet_interarrival = 0.4;
    return p;
}

TEST(ArrivalRateGrid, EvenSpacing) {
    const std::vector<double> grid = arrival_rate_grid(0.1, 1.0, 10);
    ASSERT_EQ(grid.size(), 10u);
    EXPECT_DOUBLE_EQ(grid.front(), 0.1);
    EXPECT_DOUBLE_EQ(grid.back(), 1.0);
    EXPECT_NEAR(grid[1] - grid[0], 0.1, 1e-12);
}

TEST(ArrivalRateGrid, RejectsDegenerateInputs) {
    EXPECT_THROW(arrival_rate_grid(1.0, 0.5, 5), std::invalid_argument);
    EXPECT_THROW(arrival_rate_grid(0.1, 1.0, 1), std::invalid_argument);
}

TEST(Sweep, ProducesOnePointPerRateInOrder) {
    const std::vector<double> rates{0.2, 0.4, 0.6};
    std::vector<std::size_t> seen;
    SweepOptions options;
    options.progress = [&](std::size_t idx, const SweepPoint&) { seen.push_back(idx); };
    const std::vector<SweepPoint> points =
        sweep_call_arrival_rate(sweep_config(), rates, options);
    ASSERT_EQ(points.size(), 3u);
    for (std::size_t i = 0; i < rates.size(); ++i) {
        EXPECT_DOUBLE_EQ(points[i].call_arrival_rate, rates[i]);
        EXPECT_GT(points[i].iterations, 0);
    }
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Sweep, BlockingIncreasesWithLoad) {
    const std::vector<double> rates{0.2, 0.6, 1.2};
    const std::vector<SweepPoint> points = sweep_call_arrival_rate(sweep_config(), rates);
    EXPECT_LT(points[0].measures.gsm_blocking, points[1].measures.gsm_blocking);
    EXPECT_LT(points[1].measures.gsm_blocking, points[2].measures.gsm_blocking);
    EXPECT_LT(points[0].measures.gprs_blocking, points[2].measures.gprs_blocking);
}

TEST(Sweep, WarmStartGivesSameAnswersFasterOnLaterPoints) {
    const std::vector<double> rates{0.3, 0.35, 0.4};
    SweepOptions warm;
    warm.warm_start = true;
    SweepOptions cold;
    cold.warm_start = false;
    const auto warm_points = sweep_call_arrival_rate(sweep_config(), rates, warm);
    const auto cold_points = sweep_call_arrival_rate(sweep_config(), rates, cold);
    common::index_type warm_total = 0;
    common::index_type cold_total = 0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        EXPECT_NEAR(warm_points[i].measures.carried_data_traffic,
                    cold_points[i].measures.carried_data_traffic, 1e-7);
        EXPECT_NEAR(warm_points[i].measures.packet_loss_probability,
                    cold_points[i].measures.packet_loss_probability, 1e-7);
        if (i > 0) {
            warm_total += warm_points[i].iterations;
            cold_total += cold_points[i].iterations;
        }
    }
    EXPECT_LE(warm_total, cold_total);
}

}  // namespace
}  // namespace gprsim::core
