// Validation sweeps (model solves + simulator replications pooled on one
// thread pool) must produce bitwise identical output at every width, and
// the replication CIs must actually bracket the chain on a configuration
// where the two tools agree.
#include <gtest/gtest.h>

#include <vector>

#include "core/sweep.hpp"
#include "ctmc/engine.hpp"

namespace gprsim::core {
namespace {

Parameters joint_parameters() {
    Parameters p = Parameters::base();
    p.total_channels = 6;
    p.reserved_pdch = 1;
    p.buffer_capacity = 15;
    p.max_gprs_sessions = 5;
    p.gprs_fraction = 0.3;
    p.mean_gsm_call_duration = 60.0;
    p.mean_gsm_dwell_time = 60.0;
    p.mean_gprs_dwell_time = 60.0;
    p.traffic.mean_packet_calls = 4.0;
    p.traffic.mean_packets_per_call = 8.0;
    p.traffic.mean_packet_interarrival = 0.4;
    p.traffic.mean_reading_time = 4.0;
    p.flow_control_threshold = 1.0;  // open loop on both sides
    return p;
}

ValidationOptions quick_options(int num_threads) {
    ValidationOptions options;
    options.num_threads = num_threads;
    options.experiment.replications = 3;
    options.experiment.seed = 4242;
    options.experiment.base.tcp_enabled = false;
    options.experiment.base.warmup_time = 100.0;
    options.experiment.base.batch_count = 3;
    options.experiment.base.batch_duration = 150.0;
    return options;
}

TEST(ValidationSweep, ShardedOutputIsBitwiseIdenticalToSerial) {
    const std::vector<double> rates{0.2, 0.35};
    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);

    const auto serial = sweeps.validate_call_arrival_rate(joint_parameters(), rates,
                                                          quick_options(1));
    const auto sharded = sweeps.validate_call_arrival_rate(joint_parameters(), rates,
                                                           quick_options(4));

    ASSERT_EQ(serial.size(), rates.size());
    ASSERT_EQ(sharded.size(), rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        // Chain solves are forced single-threaded in both runs (work items
        // are the parallelism), so the model side is bitwise equal too.
        EXPECT_EQ(sharded[i].model.carried_data_traffic,
                  serial[i].model.carried_data_traffic);
        EXPECT_EQ(sharded[i].model.packet_loss_probability,
                  serial[i].model.packet_loss_probability);
        EXPECT_EQ(sharded[i].iterations, serial[i].iterations);
        EXPECT_EQ(sharded[i].simulated.carried_data_traffic.mean,
                  serial[i].simulated.carried_data_traffic.mean);
        EXPECT_EQ(sharded[i].simulated.carried_data_traffic.half_width,
                  serial[i].simulated.carried_data_traffic.half_width);
        EXPECT_EQ(sharded[i].simulated.gsm_blocking.mean,
                  serial[i].simulated.gsm_blocking.mean);
        EXPECT_EQ(sharded[i].simulated.events_executed,
                  serial[i].simulated.events_executed);
    }
}

TEST(ValidationSweep, ReplicationIntervalsBracketTheChain) {
    // Paper Section 5.2 in miniature: on the open-loop joint configuration
    // the chain's CDT must sit inside (or within 3 half-widths of) the
    // simulator's replication-level interval at every point.
    const std::vector<double> rates{0.25};
    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);
    ValidationOptions options = quick_options(2);
    options.experiment.replications = 5;
    options.experiment.base.warmup_time = 500.0;
    options.experiment.base.batch_count = 4;
    options.experiment.base.batch_duration = 500.0;

    const auto points =
        sweeps.validate_call_arrival_rate(joint_parameters(), rates, options);
    ASSERT_EQ(points.size(), 1u);
    const ValidationPoint& point = points[0];
    EXPECT_EQ(point.simulated.carried_data_traffic.batches, 5);
    const auto& cdt = point.simulated.carried_data_traffic;
    // The chain idealizes service as exponential-fluid while the simulator
    // pads TDMA blocks, so allow 3 half-widths plus a small absolute slack
    // (same bands as the model-vs-simulator integration test).
    EXPECT_NEAR(point.model.carried_data_traffic, cdt.mean,
                3.0 * cdt.half_width + 0.25);
    EXPECT_NEAR(point.model.carried_voice_traffic,
                point.simulated.carried_voice_traffic.mean,
                3.0 * point.simulated.carried_voice_traffic.half_width + 0.15);
}

TEST(ValidationSweep, EmptyGridReturnsEmpty) {
    ctmc::SolverEngine engine;
    ScenarioSweep sweeps(engine);
    const auto points = sweeps.validate_call_arrival_rate(
        joint_parameters(), std::vector<double>{}, quick_options(2));
    EXPECT_TRUE(points.empty());
}

}  // namespace
}  // namespace gprsim::core
