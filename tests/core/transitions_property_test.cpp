// Parameterized structural sweep: the incoming (transposed) view of Table 1
// must be the exact inverse of the outgoing view for EVERY configuration,
// including boundary ones (no reserved PDCH, eta = 1, single session,
// minimal buffer).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "core/handover.hpp"
#include "core/transitions.hpp"

namespace gprsim::core {
namespace {

struct TransitionCase {
    std::string label;
    int total_channels;
    int reserved_pdch;
    int buffer_capacity;
    int max_gprs_sessions;
    double eta;
};

class TransitionsProperty : public ::testing::TestWithParam<TransitionCase> {
protected:
    Parameters make_parameters() const {
        const TransitionCase& c = GetParam();
        Parameters p = Parameters::base();
        p.total_channels = c.total_channels;
        p.reserved_pdch = c.reserved_pdch;
        p.buffer_capacity = c.buffer_capacity;
        p.max_gprs_sessions = c.max_gprs_sessions;
        p.flow_control_threshold = c.eta;
        p.call_arrival_rate = 0.4;
        p.gprs_fraction = 0.3;
        p.traffic.mean_packet_calls = 3.0;
        p.traffic.mean_packets_per_call = 5.0;
        p.traffic.mean_packet_interarrival = 0.4;
        p.traffic.mean_reading_time = 6.0;
        return p;
    }
};

using Key = std::tuple<int, int, int, int>;
Key key(const State& s) {
    return {s.buffer, s.gsm_calls, s.gprs_sessions, s.off_sessions};
}

TEST_P(TransitionsProperty, IncomingInvertsOutgoing) {
    const Parameters p = make_parameters();
    const ModelRates rates = balance_handover(p).rates;
    const StateSpace space(p.buffer_capacity, p.gsm_channels(), p.max_gprs_sessions);

    std::map<std::pair<Key, Key>, double> forward;
    std::map<std::pair<Key, Key>, double> backward;
    space.for_each([&](const State& s, common::index_type) {
        for_each_outgoing(p, rates, s, [&](const State& succ, double rate) {
            if (rate > 0.0) {
                forward[{key(s), key(succ)}] += rate;
            }
        });
        for_each_incoming(p, rates, s, [&](const State& pred, double rate) {
            if (rate > 0.0) {
                backward[{key(pred), key(s)}] += rate;
            }
        });
    });
    ASSERT_EQ(forward.size(), backward.size());
    for (const auto& [edge, rate] : forward) {
        const auto it = backward.find(edge);
        ASSERT_NE(it, backward.end());
        EXPECT_NEAR(it->second, rate, 1e-13);
    }
}

TEST_P(TransitionsProperty, EveryStateCanExit) {
    // Irreducibility precondition: no absorbing states anywhere.
    const Parameters p = make_parameters();
    const ModelRates rates = balance_handover(p).rates;
    const StateSpace space(p.buffer_capacity, p.gsm_channels(), p.max_gprs_sessions);
    space.for_each([&](const State& s, common::index_type) {
        EXPECT_GT(total_exit_rate(p, rates, s), 0.0)
            << "absorbing state (" << s.buffer << "," << s.gsm_calls << ","
            << s.gprs_sessions << "," << s.off_sessions << ")";
    });
}

INSTANTIATE_TEST_SUITE_P(
    BoundaryConfigs, TransitionsProperty,
    ::testing::Values(TransitionCase{"typical", 4, 1, 5, 3, 0.7},
                      TransitionCase{"no_reserved_pdch", 4, 0, 5, 3, 0.7},
                      TransitionCase{"all_but_one_reserved", 4, 3, 5, 3, 0.7},
                      TransitionCase{"no_flow_control", 4, 1, 5, 3, 1.0},
                      TransitionCase{"tight_throttle", 4, 1, 5, 3, 0.2},
                      TransitionCase{"single_session", 4, 1, 5, 1, 0.7},
                      TransitionCase{"unit_buffer", 4, 1, 1, 3, 0.7},
                      TransitionCase{"wide_cell", 12, 2, 4, 2, 0.7}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace gprsim::core
