#include "core/transitions.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/handover.hpp"

namespace gprsim::core {
namespace {

/// Small configuration whose chain can be enumerated exhaustively.
Parameters small_config() {
    Parameters p = Parameters::base();
    p.total_channels = 4;
    p.reserved_pdch = 1;
    p.buffer_capacity = 5;
    p.max_gprs_sessions = 3;
    p.call_arrival_rate = 0.4;
    p.gprs_fraction = 0.25;
    return p;
}

using Key = std::tuple<int, int, int, int>;
Key key(const State& s) {
    return {s.buffer, s.gsm_calls, s.gprs_sessions, s.off_sessions};
}

TEST(Transitions, PdchInUseFormula) {
    Parameters p = small_config();  // N = 4
    // min(N - n, 8k).
    EXPECT_EQ(pdch_in_use(p, State{0, 0, 0, 0}), 0);
    EXPECT_EQ(pdch_in_use(p, State{1, 0, 0, 0}), 4);   // 8*1 >= 4 free
    EXPECT_EQ(pdch_in_use(p, State{1, 3, 0, 0}), 1);   // only N-n = 1 free
    EXPECT_EQ(pdch_in_use(p, State{2, 2, 0, 0}), 2);
    p.total_channels = 20;
    EXPECT_EQ(pdch_in_use(p, State{1, 0, 0, 0}), 8);   // multislot cap: 8 per packet
    EXPECT_EQ(pdch_in_use(p, State{2, 0, 0, 0}), 16);
    EXPECT_EQ(pdch_in_use(p, State{3, 0, 0, 0}), 20);  // all channels busy
}

TEST(Transitions, FlowControlThrottlesAboveOnset) {
    Parameters p = small_config();
    p.flow_control_threshold = 0.6;  // onset = floor(0.6*5) = 3
    ASSERT_EQ(p.flow_control_onset(), 3);
    ModelRates rates = balance_handover(p).rates;

    // Two sessions ON: full rate 2 * lambda_packet below/at the onset.
    const State below{2, 0, 2, 0};
    EXPECT_NEAR(offered_packet_rate(p, rates, below), 2.0 * rates.packet_rate, 1e-12);
    const State at_onset{3, 0, 2, 0};
    EXPECT_NEAR(offered_packet_rate(p, rates, at_onset), 2.0 * rates.packet_rate, 1e-12);

    // Above the onset: min(full, service). With n = 3 only one channel is
    // free, so service = 1 * mu_service < 2 * lambda_packet here.
    const State above{4, 3, 2, 0};
    const double service = 1.0 * rates.service_rate;
    EXPECT_NEAR(offered_packet_rate(p, rates, above),
                std::min(2.0 * rates.packet_rate, service), 1e-12);

    // Full buffer: offered traffic still counted, but nothing is accepted.
    const State full{5, 0, 2, 0};
    EXPECT_GT(offered_packet_rate(p, rates, full), 0.0);
    EXPECT_DOUBLE_EQ(accepted_packet_rate(p, rates, full), 0.0);
}

TEST(Transitions, NoFlowControlWhenEtaIsOne) {
    Parameters p = small_config();
    p.flow_control_threshold = 1.0;
    ModelRates rates = balance_handover(p).rates;
    // Unthrottled at every buffer level below K.
    for (int k = 0; k < p.buffer_capacity; ++k) {
        const State s{k, 3, 2, 0};
        EXPECT_NEAR(offered_packet_rate(p, rates, s), 2.0 * rates.packet_rate, 1e-12)
            << "k = " << k;
    }
}

TEST(Transitions, OffSourcesGenerateNothing) {
    const Parameters p = small_config();
    const ModelRates rates = balance_handover(p).rates;
    const State all_off{0, 0, 2, 2};
    EXPECT_DOUBLE_EQ(offered_packet_rate(p, rates, all_off), 0.0);
    EXPECT_DOUBLE_EQ(accepted_packet_rate(p, rates, all_off), 0.0);
}

/// Collects the outgoing transition map of a state.
std::map<Key, double> outgoing_map(const Parameters& p, const ModelRates& rates,
                                   const State& s) {
    std::map<Key, double> map;
    for_each_outgoing(p, rates, s, [&](const State& succ, double rate) {
        map[key(succ)] += rate;
    });
    return map;
}

TEST(Transitions, Table1RowsFromEmptyState) {
    const Parameters p = small_config();
    const ModelRates rates = balance_handover(p).rates;
    const auto map = outgoing_map(p, rates, State{0, 0, 0, 0});

    // From (0,0,0,0): GSM arrival, GPRS arrival (ON or OFF start) — nothing
    // else is possible.
    ASSERT_EQ(map.size(), 3u);
    EXPECT_NEAR(map.at(Key{0, 1, 0, 0}), rates.gsm_arrival, 1e-12);
    const double p_on = rates.on_admission_probability();
    EXPECT_NEAR(map.at(Key{0, 0, 1, 0}), p_on * rates.gprs_arrival, 1e-12);
    EXPECT_NEAR(map.at(Key{0, 0, 1, 1}), (1.0 - p_on) * rates.gprs_arrival, 1e-12);
}

TEST(Transitions, Table1RowsFromInteriorState) {
    const Parameters p = small_config();  // N=4, N_GSM=3, M=3, K=5
    const ModelRates rates = balance_handover(p).rates;
    const State s{2, 1, 2, 1};  // k=2, n=1, m=2, r=1
    const auto map = outgoing_map(p, rates, s);

    // GSM arrival and departure.
    EXPECT_NEAR(map.at(Key{2, 2, 2, 1}), rates.gsm_arrival, 1e-12);
    EXPECT_NEAR(map.at(Key{2, 0, 2, 1}), 1.0 * rates.gsm_departure, 1e-12);
    // GPRS arrival split.
    const double p_on = rates.on_admission_probability();
    EXPECT_NEAR(map.at(Key{2, 1, 3, 1}), p_on * rates.gprs_arrival, 1e-12);
    EXPECT_NEAR(map.at(Key{2, 1, 3, 2}), (1.0 - p_on) * rates.gprs_arrival, 1e-12);
    // GPRS departure: ON leaves (m-r = 1) keeps r, OFF leaves (r = 1) drops r.
    EXPECT_NEAR(map.at(Key{2, 1, 1, 1}), 1.0 * rates.gprs_departure, 1e-12);
    EXPECT_NEAR(map.at(Key{2, 1, 1, 0}), 1.0 * rates.gprs_departure, 1e-12);
    // Packet arrival: one ON source, below onset (floor(0.7*5) = 3).
    EXPECT_NEAR(map.at(Key{3, 1, 2, 1}), 1.0 * rates.packet_rate, 1e-12);
    // Packet service: min(N-n, 8k) = min(3, 16) = 3 channels.
    EXPECT_NEAR(map.at(Key{1, 1, 2, 1}), 3.0 * rates.service_rate, 1e-12);
    // MMPP flips: ON->OFF at (m-r) a, OFF->ON at r b.
    EXPECT_NEAR(map.at(Key{2, 1, 2, 2}), 1.0 * rates.on_to_off, 1e-12);
    EXPECT_NEAR(map.at(Key{2, 1, 2, 0}), 1.0 * rates.off_to_on, 1e-12);
    EXPECT_EQ(map.size(), 10u);
}

TEST(Transitions, BoundaryConditionsRespectTable1) {
    const Parameters p = small_config();
    const ModelRates rates = balance_handover(p).rates;

    // n at N_GSM: no further GSM arrivals.
    const auto at_gsm_cap = outgoing_map(p, rates, State{0, 3, 0, 0});
    EXPECT_EQ(at_gsm_cap.count(Key{0, 4, 0, 0}), 0u);

    // m at M: no further GPRS arrivals.
    const auto at_m_cap = outgoing_map(p, rates, State{0, 0, 3, 0});
    EXPECT_EQ(at_m_cap.count(Key{0, 0, 4, 0}), 0u);

    // k at K: no packet-arrival transition even with ON sources.
    const auto at_k_cap = outgoing_map(p, rates, State{5, 0, 1, 0});
    EXPECT_EQ(at_k_cap.count(Key{6, 0, 1, 0}), 0u);

    // r = 0: no OFF->ON flip; r = m: no ON->OFF flip.
    const auto r_zero = outgoing_map(p, rates, State{0, 0, 2, 0});
    EXPECT_EQ(r_zero.count(Key{0, 0, 2, -1}), 0u);
    const auto r_full = outgoing_map(p, rates, State{0, 0, 2, 2});
    EXPECT_EQ(r_full.count(Key{0, 0, 2, 3}), 0u);
}

TEST(Transitions, IncomingIsExactInverseOfOutgoing) {
    // Build the full transition multimap both ways and compare. This is the
    // strongest structural check: every Table 1 row and its hand-derived
    // inverse must agree entry for entry.
    const Parameters p = small_config();
    const ModelRates rates = balance_handover(p).rates;
    const StateSpace space(p.buffer_capacity, p.gsm_channels(), p.max_gprs_sessions);

    std::map<std::pair<Key, Key>, double> forward;
    std::map<std::pair<Key, Key>, double> backward;
    space.for_each([&](const State& s, common::index_type) {
        for_each_outgoing(p, rates, s, [&](const State& succ, double rate) {
            if (rate > 0.0) {
                forward[{key(s), key(succ)}] += rate;
            }
        });
        for_each_incoming(p, rates, s, [&](const State& pred, double rate) {
            if (rate > 0.0) {
                backward[{key(pred), key(s)}] += rate;
            }
        });
    });

    ASSERT_EQ(forward.size(), backward.size());
    for (const auto& [edge, rate] : forward) {
        const auto it = backward.find(edge);
        ASSERT_NE(it, backward.end())
            << "edge missing in incoming view: (" << std::get<0>(edge.first) << ","
            << std::get<1>(edge.first) << "," << std::get<2>(edge.first) << ","
            << std::get<3>(edge.first) << ") -> ...";
        EXPECT_NEAR(it->second, rate, 1e-13);
    }
}

TEST(Transitions, ExitRateMatchesSumOfOutgoing) {
    const Parameters p = small_config();
    const ModelRates rates = balance_handover(p).rates;
    const StateSpace space(p.buffer_capacity, p.gsm_channels(), p.max_gprs_sessions);
    space.for_each([&](const State& s, common::index_type) {
        double sum = 0.0;
        for_each_outgoing(p, rates, s, [&](const State&, double rate) { sum += rate; });
        EXPECT_NEAR(total_exit_rate(p, rates, s), sum, 1e-13);
    });
}

TEST(Transitions, SuccessorsStayInsideStateSpace) {
    const Parameters p = small_config();
    const ModelRates rates = balance_handover(p).rates;
    const StateSpace space(p.buffer_capacity, p.gsm_channels(), p.max_gprs_sessions);
    space.for_each([&](const State& s, common::index_type) {
        for_each_outgoing(p, rates, s, [&](const State& succ, double) {
            EXPECT_GE(succ.buffer, 0);
            EXPECT_LE(succ.buffer, p.buffer_capacity);
            EXPECT_GE(succ.gsm_calls, 0);
            EXPECT_LE(succ.gsm_calls, p.gsm_channels());
            EXPECT_GE(succ.gprs_sessions, 0);
            EXPECT_LE(succ.gprs_sessions, p.max_gprs_sessions);
            EXPECT_GE(succ.off_sessions, 0);
            EXPECT_LE(succ.off_sessions, succ.gprs_sessions);
        });
    });
}

}  // namespace
}  // namespace gprsim::core
