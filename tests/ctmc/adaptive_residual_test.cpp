// Adaptive residual-check scheduling tests. The checkpoint schedule
// (normalization every check_interval sweeps) is FIXED whether or not
// adaptive checks are on — only the residual evaluation is skipped at
// checkpoints the convergence-rate extrapolation deems hopeless. The
// contract is therefore strong: the returned distribution, iteration count
// and final residual are bitwise identical with adaptive checks on or off;
// only result.residual_evaluations shrinks. A second family pins the
// pipelined QtMatrix fast path against the generic matrix-free kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "ctmc/engine.hpp"

namespace gprsim::ctmc {
namespace {

std::vector<Triplet> random_chain(index_type n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> rate(0.1, 10.0);
    std::uniform_int_distribution<index_type> pick(0, n - 1);
    std::vector<Triplet> triplets;
    for (index_type i = 0; i < n; ++i) {
        triplets.push_back({i, (i + 1) % n, rate(rng)});
    }
    for (index_type e = 0; e < 3 * n; ++e) {
        const index_type i = pick(rng);
        const index_type j = pick(rng);
        if (i != j) {
            triplets.push_back({i, j, rate(rng)});
        }
    }
    return triplets;
}

QtMatrix qt_from_triplets(index_type n, const std::vector<Triplet>& triplets) {
    return build_qt_matrix(n, [&](index_type i, auto&& emit) {
        for (const Triplet& t : triplets) {
            if (t.row == i) {
                emit(t.col, t.value);
            }
        }
    });
}

/// Matrix-free view over a QtMatrix: same data, different static type, so
/// the engine takes the generic operator kernels instead of the pipelined
/// CSR fast path.
struct MatrixFreeView {
    const QtMatrix* qt;

    index_type size() const { return qt->size(); }
    double diagonal(index_type i) const { return qt->diagonal(i); }
    template <typename F>
    void for_each_incoming(index_type i, F&& f) const {
        const auto cols = qt->off_diagonal().row_cols(i);
        const auto vals = qt->off_diagonal().row_values(i);
        for (std::size_t p = 0; p < cols.size(); ++p) {
            f(static_cast<index_type>(cols[p]), vals[p]);
        }
    }
};

class AdaptiveResidualMethods : public ::testing::TestWithParam<SolveMethod> {};

TEST_P(AdaptiveResidualMethods, BitwiseEqualToFixedScheduleWithFewerChecks) {
    SolverEngine engine;
    const index_type n = 250;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 2024));

    SolveOptions fixed;
    fixed.method = GetParam();
    fixed.tolerance = 1e-13;
    fixed.max_iterations = 500000;
    fixed.check_interval = 2;  // small interval => many skippable checkpoints
    fixed.adaptive_checks = false;
    const SolveResult dense = engine.solve(qt, fixed);
    ASSERT_TRUE(dense.converged);

    SolveOptions adaptive = fixed;
    adaptive.adaptive_checks = true;
    const SolveResult sparse = engine.solve(qt, adaptive);
    ASSERT_TRUE(sparse.converged);

    // Same trajectory, same stopping sweep, same answer — bitwise.
    EXPECT_EQ(sparse.iterations, dense.iterations);
    EXPECT_EQ(sparse.residual, dense.residual);
    EXPECT_EQ(sparse.distribution, dense.distribution);
    // ... reached with strictly fewer residual evaluations.
    EXPECT_LT(sparse.residual_evaluations, dense.residual_evaluations);
    EXPECT_GE(sparse.residual_evaluations, 1);
}

INSTANTIATE_TEST_SUITE_P(Engine, AdaptiveResidualMethods,
                         ::testing::Values(SolveMethod::gauss_seidel,
                                           SolveMethod::red_black_gauss_seidel,
                                           SolveMethod::jacobi),
                         [](const auto& info) { return method_name(info.param); });

TEST(AdaptiveResidual, FixedScheduleCountsOneResidualPerCheckpoint) {
    SolverEngine engine;
    const index_type n = 120;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 17));

    SolveOptions options;
    options.tolerance = 1e-12;
    options.check_interval = 5;
    options.adaptive_checks = false;
    const SolveResult result = engine.solve(qt, options);
    ASSERT_TRUE(result.converged);
    // One residual pass per visited checkpoint: ceil(iterations / interval).
    const long long checkpoints = (result.iterations + 4) / 5;
    EXPECT_EQ(result.residual_evaluations, checkpoints);
}

TEST(AdaptiveResidual, ProgressFiresOnlyAtResidualCheckpoints) {
    SolverEngine engine;
    const index_type n = 120;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 29));

    SolveOptions options;
    options.tolerance = 1e-13;
    options.check_interval = 2;
    long long calls = 0;
    options.progress = [&](index_type, double) { ++calls; };
    const SolveResult result = engine.solve(qt, options);
    ASSERT_TRUE(result.converged);
    EXPECT_EQ(calls, result.residual_evaluations);
}

TEST(AdaptiveResidual, RejectsNonPositiveCheckInterval) {
    SolverEngine engine;
    const QtMatrix qt = qt_from_triplets(10, random_chain(10, 3));
    SolveOptions options;
    options.check_interval = 0;
    EXPECT_THROW(engine.solve(qt, options), std::invalid_argument);
}

TEST(AdaptiveResidual, MaxIterationsCheckpointAlwaysEvaluates) {
    // A hopeless tolerance: the extrapolation wants to skip far ahead, but
    // the run must still report a residual for the sweep it stopped at.
    SolverEngine engine;
    const index_type n = 80;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 31));
    SolveOptions options;
    options.tolerance = 1e-300;
    options.max_iterations = 47;  // not a multiple of the interval
    options.check_interval = 10;
    const SolveResult result = engine.solve(qt, options);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.iterations, 47);
    EXPECT_GT(result.residual, 0.0);
    EXPECT_GE(result.residual_evaluations, 1);
}

TEST(AdaptiveResidual, PipelinedFastPathMatchesGenericKernelBitwise) {
    // The wavefront-pipelined CSR sweeps and the fused normalize+residual
    // pass are pure layout optimizations: solving through the matrix-free
    // view (generic kernels, separate normalize/residual passes) must give
    // the identical trajectory.
    SolverEngine engine;
    const index_type n = 300;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 4711));

    for (const bool adaptive : {false, true}) {
        SolveOptions options;
        options.tolerance = 1e-13;
        options.max_iterations = 500000;
        options.adaptive_checks = adaptive;
        const SolveResult fast = engine.solve(qt, options);
        const SolveResult generic = engine.solve(MatrixFreeView{&qt}, options);
        ASSERT_TRUE(fast.converged);
        ASSERT_TRUE(generic.converged);
        EXPECT_EQ(fast.iterations, generic.iterations);
        EXPECT_EQ(fast.residual, generic.residual);
        EXPECT_EQ(fast.residual_evaluations, generic.residual_evaluations);
        EXPECT_EQ(fast.distribution, generic.distribution);
    }
}

}  // namespace
}  // namespace gprsim::ctmc
