#include "ctmc/birth_death.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gprsim::ctmc {
namespace {

TEST(BirthDeath, SingleStateWhenNoRates) {
    const std::vector<double> pi = birth_death_distribution({}, {});
    ASSERT_EQ(pi.size(), 1u);
    EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(BirthDeath, Mm1GeometricShape) {
    // M/M/1/K truncates the geometric distribution: pi_k ∝ rho^k.
    const double rho = 0.5;
    const std::vector<double> birth(4, rho);
    const std::vector<double> death(4, 1.0);
    const std::vector<double> pi = birth_death_distribution(birth, death);
    for (std::size_t k = 1; k < pi.size(); ++k) {
        EXPECT_NEAR(pi[k] / pi[k - 1], rho, 1e-14);
    }
    double sum = 0.0;
    for (double v : pi) {
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST(BirthDeath, ExtremeSkewStaysFinite) {
    // Loss probability ~1e-40 must not underflow to nonsense.
    const std::vector<double> birth(20, 1e-2);
    const std::vector<double> death(20, 1e2);
    const std::vector<double> pi = birth_death_distribution(birth, death);
    EXPECT_NEAR(pi[0], 1.0, 1e-4);
    EXPECT_GT(pi[20], 0.0);
    EXPECT_NEAR(std::log10(pi[20]), -80.0, 1.0);
}

TEST(BirthDeath, ZeroBirthRateTruncatesChain) {
    const std::vector<double> birth{1.0, 0.0, 1.0};
    const std::vector<double> death{1.0, 1.0, 1.0};
    const std::vector<double> pi = birth_death_distribution(birth, death);
    EXPECT_GT(pi[0], 0.0);
    EXPECT_GT(pi[1], 0.0);
    EXPECT_DOUBLE_EQ(pi[2], 0.0);
    EXPECT_DOUBLE_EQ(pi[3], 0.0);
}

TEST(BirthDeath, RejectsInvalidRates) {
    const std::vector<double> one{1.0};
    const std::vector<double> zero{0.0};
    const std::vector<double> negative{-1.0};
    const std::vector<double> two{1.0, 1.0};
    EXPECT_THROW(birth_death_distribution(one, zero), std::invalid_argument);
    EXPECT_THROW(birth_death_distribution(negative, one), std::invalid_argument);
    EXPECT_THROW(birth_death_distribution(two, one), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::ctmc
