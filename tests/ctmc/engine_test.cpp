// SolverEngine tests: the parallel methods must (a) agree with the serial
// GTH ground truth to 1e-10 and (b) produce bitwise identical distributions
// for every thread count — the blocked kernels make the result a pure
// function of the operator, never of the execution width.
#include "ctmc/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "ctmc/gth.hpp"
#include "ctmc/solver.hpp"

namespace gprsim::ctmc {
namespace {

/// Random irreducible generator: a ring backbone plus random extra
/// transitions (the gth_test/solver_test fixture family).
std::vector<Triplet> random_chain(index_type n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> rate(0.1, 10.0);
    std::uniform_int_distribution<index_type> pick(0, n - 1);
    std::vector<Triplet> triplets;
    for (index_type i = 0; i < n; ++i) {
        triplets.push_back({i, (i + 1) % n, rate(rng)});
    }
    for (index_type e = 0; e < 3 * n; ++e) {
        const index_type i = pick(rng);
        const index_type j = pick(rng);
        if (i != j) {
            triplets.push_back({i, j, rate(rng)});
        }
    }
    return triplets;
}

QtMatrix qt_from_triplets(index_type n, const std::vector<Triplet>& triplets) {
    return build_qt_matrix(n, [&](index_type i, auto&& emit) {
        for (const Triplet& t : triplets) {
            if (t.row == i) {
                emit(t.col, t.value);
            }
        }
    });
}

std::vector<double> gth_ground_truth(index_type n, std::vector<Triplet> triplets) {
    std::vector<double> exit(static_cast<std::size_t>(n), 0.0);
    for (const Triplet& t : triplets) {
        exit[static_cast<std::size_t>(t.row)] += t.value;
    }
    for (index_type i = 0; i < n; ++i) {
        triplets.push_back({i, i, -exit[static_cast<std::size_t>(i)]});
    }
    return solve_gth(SparseMatrix::from_triplets(n, n, std::move(triplets)));
}

class ParallelMethods : public ::testing::TestWithParam<SolveMethod> {};

TEST_P(ParallelMethods, MatchesGthGroundTruthTo1e10) {
    SolverEngine engine;
    for (std::uint64_t seed : {7u, 21u, 99u}) {
        const index_type n = 40;
        const std::vector<Triplet> triplets = random_chain(n, seed);
        const std::vector<double> exact = gth_ground_truth(n, triplets);
        const QtMatrix qt = qt_from_triplets(n, triplets);

        SolveOptions options;
        options.method = GetParam();
        options.tolerance = 1e-13;
        options.max_iterations = 500000;
        options.num_threads = 2;
        const SolveResult result = engine.solve(qt, options);
        ASSERT_TRUE(result.converged) << "seed " << seed;
        EXPECT_EQ(result.method_used, GetParam());
        for (index_type i = 0; i < n; ++i) {
            EXPECT_NEAR(result.distribution[static_cast<std::size_t>(i)],
                        exact[static_cast<std::size_t>(i)], 1e-10)
                << "state " << i << " seed " << seed;
        }
    }
}

TEST_P(ParallelMethods, BitwiseIdenticalAcrossThreadCounts) {
    SolverEngine engine;
    const index_type n = 173;  // odd and not a multiple of the block count
    const std::vector<Triplet> triplets = random_chain(n, 4242);
    const QtMatrix qt = qt_from_triplets(n, triplets);

    SolveOptions options;
    options.method = GetParam();
    options.tolerance = 1e-12;
    options.max_iterations = 500000;

    options.num_threads = 1;
    const SolveResult one = engine.solve(qt, options);
    ASSERT_TRUE(one.converged);
    for (int threads : {2, 8}) {
        options.num_threads = threads;
        const SolveResult wide = engine.solve(qt, options);
        ASSERT_TRUE(wide.converged) << threads << " threads";
        EXPECT_EQ(wide.iterations, one.iterations) << threads << " threads";
        for (index_type i = 0; i < n; ++i) {
            // Bitwise: the blocked kernels shard over a fixed partition, so
            // the arithmetic is identical for every execution width.
            EXPECT_EQ(wide.distribution[static_cast<std::size_t>(i)],
                      one.distribution[static_cast<std::size_t>(i)])
                << "state " << i << " at " << threads << " threads";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Engine, ParallelMethods,
                         ::testing::Values(SolveMethod::red_black_gauss_seidel,
                                           SolveMethod::jacobi, SolveMethod::power),
                         [](const auto& info) {
                             switch (info.param) {
                                 case SolveMethod::red_black_gauss_seidel:
                                     return "red_black_gauss_seidel";
                                 case SolveMethod::jacobi:
                                     return "jacobi";
                                 case SolveMethod::power:
                                     return "power";
                                 default:
                                     return "unexpected";
                             }
                         });

TEST(SolverEngine, GaussSeidelUpgradesToRedBlackWhenParallel) {
    SolverEngine engine;
    const index_type n = 60;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 3));

    SolveOptions options;  // method defaults to gauss_seidel
    options.tolerance = 1e-12;
    options.num_threads = 4;
    const SolveResult parallel = engine.solve(qt, options);
    ASSERT_TRUE(parallel.converged);
    EXPECT_EQ(parallel.method_used, SolveMethod::red_black_gauss_seidel);
    EXPECT_EQ(parallel.threads_used, 4);

    options.num_threads = 1;
    const SolveResult serial = engine.solve(qt, options);
    EXPECT_EQ(serial.method_used, SolveMethod::gauss_seidel);
    EXPECT_EQ(serial.threads_used, 1);
}

TEST(SolverEngine, SerialPathMatchesFreeFunctionBitwise) {
    // The solve_steady_state() facade routes through the default engine;
    // a private engine with num_threads = 1 must agree exactly.
    SolverEngine engine;
    const index_type n = 50;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 11));

    SolveOptions options;
    options.tolerance = 1e-12;
    const SolveResult a = engine.solve(qt, options);
    const SolveResult b = solve_steady_state(qt, options);
    ASSERT_TRUE(a.converged);
    ASSERT_TRUE(b.converged);
    EXPECT_EQ(a.iterations, b.iterations);
    for (index_type i = 0; i < n; ++i) {
        EXPECT_EQ(a.distribution[static_cast<std::size_t>(i)],
                  b.distribution[static_cast<std::size_t>(i)]);
    }
}

TEST(SolverEngine, PoolGrowsButNeverShrinks) {
    SolverEngine engine;
    EXPECT_EQ(engine.pool(2).size(), 2);
    EXPECT_EQ(engine.pool(1).size(), 2);  // wide enough already
    EXPECT_EQ(engine.pool(6).size(), 6);
}

TEST(SolverEngine, ResolveThreadCount) {
    EXPECT_EQ(SolverEngine::resolve_thread_count(1), 1);
    EXPECT_EQ(SolverEngine::resolve_thread_count(5), 5);
    EXPECT_EQ(SolverEngine::resolve_thread_count(-3), 1);
    EXPECT_GE(SolverEngine::resolve_thread_count(0), 1);
}

TEST(SolverEngine, RejectsDegenerateInputsLikeTheSerialSolver) {
    SolverEngine engine;
    const QtMatrix empty;
    SolveOptions options;
    EXPECT_THROW(engine.solve(empty, options), std::invalid_argument);

    const QtMatrix qt = qt_from_triplets(10, random_chain(10, 1));
    options.initial.assign(7, 0.1);  // size mismatch
    EXPECT_THROW(engine.solve(qt, options), std::invalid_argument);
}

TEST(SolverEngine, InitialCandidatesPickTheLowestResidualStart) {
    // Candidate selection: offered the converged solution and the uniform
    // vector, the engine must start from the solution (index 0 reported)
    // and converge almost immediately; order flipped, it reports index 1.
    SolverEngine engine;
    const index_type n = 60;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 5));
    SolveOptions options;
    options.tolerance = 1e-12;
    const SolveResult reference = engine.solve(qt, options);
    ASSERT_TRUE(reference.converged);

    const std::vector<double> uniform(static_cast<std::size_t>(n), 1.0);
    SolveOptions with_candidates;
    with_candidates.tolerance = 1e-12;
    with_candidates.initial_candidates = {reference.distribution, uniform};
    const SolveResult from_solution = engine.solve(qt, with_candidates);
    EXPECT_EQ(from_solution.initial_selected, 0);
    EXPECT_LE(from_solution.iterations, reference.iterations);

    with_candidates.initial_candidates = {uniform, reference.distribution};
    EXPECT_EQ(engine.solve(qt, with_candidates).initial_selected, 1);

    // The preference margin keeps near-ties at the earlier candidate: an
    // identical later candidate never displaces the incumbent, while a
    // decisively better one still does.
    with_candidates.candidate_margin = 0.5;
    with_candidates.initial_candidates = {uniform, uniform};
    EXPECT_EQ(engine.solve(qt, with_candidates).initial_selected, 0);
    with_candidates.initial_candidates = {uniform, reference.distribution};
    EXPECT_EQ(engine.solve(qt, with_candidates).initial_selected, 1);
    with_candidates.candidate_margin = 1.0;

    // No candidate list: the field stays -1.
    EXPECT_EQ(reference.initial_selected, -1);

    // Mutually exclusive with a plain initial; sizes are validated.
    SolveOptions conflicting;
    conflicting.initial = uniform;
    conflicting.initial_candidates = {uniform};
    EXPECT_THROW(engine.solve(qt, conflicting), std::invalid_argument);
    SolveOptions missized;
    missized.initial_candidates = {std::vector<double>(7, 0.1)};
    EXPECT_THROW(engine.solve(qt, missized), std::invalid_argument);
}

TEST(AutoSelect, SerialBudgetAlwaysPicksGaussSeidel) {
    for (index_type n : {100, 50000, 10000000}) {
        const AutoSelection pick = auto_select_method(n, 1);
        EXPECT_EQ(pick.method, SolveMethod::gauss_seidel) << n << " states";
        EXPECT_FALSE(pick.reason.empty());
    }
}

TEST(AutoSelect, SmallChainsStaySerialWhateverTheBudget) {
    for (int threads : {2, 4, 8, 64}) {
        const AutoSelection pick = auto_select_method(20000, threads);
        EXPECT_EQ(pick.method, SolveMethod::gauss_seidel) << threads << " threads";
    }
}

TEST(AutoSelect, WideBudgetOnLargeChainsPicksRedBlack) {
    // The cost model's crossover: the red-black per-sweep cost and its
    // sweep-count penalty amortize over the pool only past ~9 threads.
    EXPECT_EQ(auto_select_method(200000, 16).method,
              SolveMethod::red_black_gauss_seidel);
    EXPECT_EQ(auto_select_method(200000, 8).method, SolveMethod::gauss_seidel);
}

TEST(AutoSelect, JacobiNeverWinsTheCostModel) {
    // Jacobi's sweep-count penalty dominates at every width the model
    // considers; it exists for A/B experiments, not for auto dispatch.
    for (index_type n : {20000, 60000, 200000, 2000000}) {
        for (int threads : {1, 2, 8, 16, 64}) {
            EXPECT_NE(auto_select_method(n, threads).method, SolveMethod::jacobi)
                << n << " states, " << threads << " threads";
        }
    }
}

TEST(AutoSelect, DecisionAndReasonAreDeterministic) {
    for (int threads : {1, 8, 16}) {
        const AutoSelection a = auto_select_method(200000, threads);
        const AutoSelection b = auto_select_method(200000, threads);
        EXPECT_EQ(a.method, b.method);
        EXPECT_EQ(a.reason, b.reason);
    }
}

TEST(AutoSelect, SolveRecordsTheDecisionAndMatchesExplicitSerialBitwise) {
    SolverEngine engine;
    const index_type n = 120;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 9));

    SolveOptions explicit_gs;
    explicit_gs.tolerance = 1e-12;
    explicit_gs.method = SolveMethod::gauss_seidel;
    explicit_gs.num_threads = 1;
    const SolveResult reference = engine.solve(qt, explicit_gs);
    ASSERT_TRUE(reference.converged);
    EXPECT_TRUE(reference.reason.empty());

    SolveOptions auto_opts = explicit_gs;
    auto_opts.method = SolveMethod::auto_select;
    const SolveResult picked = engine.solve(qt, auto_opts);
    ASSERT_TRUE(picked.converged);
    EXPECT_EQ(picked.method_used, SolveMethod::gauss_seidel);
    EXPECT_FALSE(picked.reason.empty());
    EXPECT_EQ(picked.iterations, reference.iterations);
    EXPECT_EQ(picked.distribution, reference.distribution);
}

TEST(AutoSelect, AutoPickedSerialStaysSerialOnAWideEngine) {
    // auto_select's serial choice is deliberate: unlike an explicit
    // gauss_seidel request, it must NOT be upgraded to red-black when the
    // caller offers more threads (a small chain solves faster serially).
    SolverEngine engine;
    const index_type n = 90;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 13));
    SolveOptions options;
    options.tolerance = 1e-12;
    options.method = SolveMethod::auto_select;
    options.num_threads = 4;
    const SolveResult result = engine.solve(qt, options);
    ASSERT_TRUE(result.converged);
    EXPECT_EQ(result.method_used, SolveMethod::gauss_seidel);
    EXPECT_EQ(result.threads_used, 1);

    options.method = SolveMethod::gauss_seidel;
    const SolveResult upgraded = engine.solve(qt, options);
    EXPECT_EQ(upgraded.method_used, SolveMethod::red_black_gauss_seidel);
}

TEST(MethodNames, RoundTripThroughTheStringMapping) {
    for (SolveMethod m :
         {SolveMethod::gauss_seidel, SolveMethod::symmetric_gauss_seidel,
          SolveMethod::sor, SolveMethod::jacobi, SolveMethod::power,
          SolveMethod::red_black_gauss_seidel, SolveMethod::auto_select}) {
        const auto parsed = method_from_name(method_name(m));
        ASSERT_TRUE(parsed.has_value()) << method_name(m);
        EXPECT_EQ(*parsed, m);
    }
    EXPECT_EQ(method_name(SolveMethod::auto_select), std::string("auto"));
    EXPECT_FALSE(method_from_name("bogus").has_value());
    EXPECT_FALSE(method_from_name("").has_value());
}

TEST(SolverEngine, ConvergedResultSkipsRedundantRecomputation) {
    // After a converged check the residual must describe the returned
    // distribution: recomputing it from scratch gives the same value.
    SolverEngine engine;
    const index_type n = 40;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 77));
    SolveOptions options;
    options.tolerance = 1e-12;
    const SolveResult result = engine.solve(qt, options);
    ASSERT_TRUE(result.converged);
    const double lambda = detail::max_exit_rate(qt);
    EXPECT_EQ(result.residual, detail::scaled_residual(qt, result.distribution, lambda));
}

}  // namespace
}  // namespace gprsim::ctmc
