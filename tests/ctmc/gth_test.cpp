#include "ctmc/gth.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ctmc/birth_death.hpp"
#include "ctmc/sparse_matrix.hpp"

namespace gprsim::ctmc {
namespace {

TEST(Gth, TwoStateChainMatchesHandComputation) {
    // 0 -> 1 at rate 2, 1 -> 0 at rate 3: pi = (3/5, 2/5).
    std::vector<double> rates{0.0, 2.0, 3.0, 0.0};
    const std::vector<double> pi = solve_gth_dense(std::move(rates), 2);
    EXPECT_NEAR(pi[0], 0.6, 1e-14);
    EXPECT_NEAR(pi[1], 0.4, 1e-14);
}

TEST(Gth, MatchesBirthDeathClosedFormOnMm1k) {
    // M/M/1/5 with lambda = 0.8, mu = 1.0.
    const int capacity = 5;
    std::vector<double> dense(36, 0.0);
    for (int k = 0; k < capacity; ++k) {
        dense[static_cast<std::size_t>(k) * 6 + static_cast<std::size_t>(k) + 1] = 0.8;
        dense[(static_cast<std::size_t>(k) + 1) * 6 + static_cast<std::size_t>(k)] = 1.0;
    }
    const std::vector<double> pi = solve_gth_dense(std::move(dense), 6);

    const std::vector<double> birth(5, 0.8);
    const std::vector<double> death(5, 1.0);
    const std::vector<double> expected = birth_death_distribution(birth, death);
    for (int k = 0; k <= capacity; ++k) {
        EXPECT_NEAR(pi[static_cast<std::size_t>(k)], expected[static_cast<std::size_t>(k)],
                    1e-13);
    }
}

TEST(Gth, HandlesStiffChains) {
    // Rates spanning 12 orders of magnitude: GTH stays exact because it
    // never subtracts.
    std::vector<double> rates{0.0, 1e-6, 1e6, 0.0};
    const std::vector<double> pi = solve_gth_dense(std::move(rates), 2);
    // pi_1 / pi_0 = 1e-6 / 1e6 = 1e-12.
    EXPECT_NEAR(pi[1] / pi[0], 1e-12, 1e-24);
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-15);
}

TEST(Gth, SparseOverloadMatchesDense) {
    // Small cyclic chain 0 -> 1 -> 2 -> 0 with distinct rates.
    const SparseMatrix q = SparseMatrix::from_triplets(
        3, 3,
        {{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 3.0}, {0, 0, -1.0}, {1, 1, -2.0}, {2, 2, -3.0}});
    const std::vector<double> pi = solve_gth(q);
    // Flow balance: pi_0 * 1 = pi_1 * 2 = pi_2 * 3.
    EXPECT_NEAR(pi[0] * 1.0, pi[1] * 2.0, 1e-14);
    EXPECT_NEAR(pi[1] * 2.0, pi[2] * 3.0, 1e-14);
}

TEST(Gth, RejectsReducibleChain) {
    // State 1 is absorbing: elimination hits a zero pivot.
    std::vector<double> rates{0.0, 1.0, 0.0, 0.0};
    EXPECT_THROW(solve_gth_dense(std::move(rates), 2), std::runtime_error);
}

TEST(Gth, RejectsBadDimensions) {
    EXPECT_THROW(solve_gth_dense({1.0, 2.0}, 3), std::invalid_argument);
    EXPECT_THROW(solve_gth_dense({}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::ctmc
