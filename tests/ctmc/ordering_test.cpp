// Row-ordering tests: permutation helpers, QtMatrix reindexing, and the
// engine's permuted-solve path. The headline property is the scramble
// round trip: permuting a matrix by sigma and solving it with
// options.permutation = sigma^-1 makes the engine's internal system
// EXACTLY the original matrix (permute(permute(A, s), s^-1) = A entry for
// entry), so the sweeps — and the returned distribution, after the
// engine's inverse mapping — are bitwise identical to the direct solve.
#include "ctmc/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "ctmc/engine.hpp"

namespace gprsim::ctmc {
namespace {

std::vector<Triplet> random_chain(index_type n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> rate(0.1, 10.0);
    std::uniform_int_distribution<index_type> pick(0, n - 1);
    std::vector<Triplet> triplets;
    for (index_type i = 0; i < n; ++i) {
        triplets.push_back({i, (i + 1) % n, rate(rng)});
    }
    for (index_type e = 0; e < 3 * n; ++e) {
        const index_type i = pick(rng);
        const index_type j = pick(rng);
        if (i != j) {
            triplets.push_back({i, j, rate(rng)});
        }
    }
    return triplets;
}

QtMatrix qt_from_triplets(index_type n, const std::vector<Triplet>& triplets) {
    return build_qt_matrix(n, [&](index_type i, auto&& emit) {
        for (const Triplet& t : triplets) {
            if (t.row == i) {
                emit(t.col, t.value);
            }
        }
    });
}

std::vector<index_type> shuffled_order(index_type n, std::uint64_t seed) {
    std::vector<index_type> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), index_type{0});
    std::mt19937_64 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);
    return order;
}

TEST(Ordering, IdentityAndValidationHelpers) {
    EXPECT_TRUE(is_identity_permutation(std::vector<index_type>{}));
    EXPECT_TRUE(is_identity_permutation(std::vector<index_type>{0, 1, 2}));
    EXPECT_FALSE(is_identity_permutation(std::vector<index_type>{0, 2, 1}));

    EXPECT_NO_THROW(validate_permutation(std::vector<index_type>{2, 0, 1}, 3));
    EXPECT_THROW(validate_permutation(std::vector<index_type>{0, 1}, 3),
                 std::invalid_argument);
    EXPECT_THROW(validate_permutation(std::vector<index_type>{0, 0, 1}, 3),
                 std::invalid_argument);
    EXPECT_THROW(validate_permutation(std::vector<index_type>{0, 1, 3}, 3),
                 std::invalid_argument);
}

TEST(Ordering, InversePermutationRoundTripsVectors) {
    const std::vector<index_type> order{3, 0, 2, 1};
    const std::vector<index_type> inverse = inverse_permutation(order);
    for (std::size_t p = 0; p < order.size(); ++p) {
        EXPECT_EQ(inverse[static_cast<std::size_t>(order[p])],
                  static_cast<index_type>(p));
    }
    const std::vector<double> x{10.0, 11.0, 12.0, 13.0};
    EXPECT_EQ(inverse_permute_vector(permute_vector(x, order), order), x);
    EXPECT_EQ(permute_vector(inverse_permute_vector(x, order), order), x);
}

TEST(Ordering, PermutedMatrixMatchesEntrywise) {
    const index_type n = 23;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 7));
    const std::vector<index_type> order = shuffled_order(n, 8);
    const QtMatrix permuted = permute_qt_matrix(qt, order);
    ASSERT_EQ(permuted.size(), n);
    for (index_type p = 0; p < n; ++p) {
        EXPECT_EQ(permuted.diagonal(p), qt.diagonal(order[static_cast<std::size_t>(p)]));
        for (index_type q = 0; q < n; ++q) {
            EXPECT_EQ(permuted.off_diagonal().at(p, q),
                      qt.off_diagonal().at(order[static_cast<std::size_t>(p)],
                                           order[static_cast<std::size_t>(q)]))
                << "entry (" << p << ", " << q << ")";
        }
    }
}

TEST(Ordering, PermuteThenInverseRestoresTheMatrixExactly) {
    const index_type n = 31;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 11));
    const std::vector<index_type> order = shuffled_order(n, 12);
    const QtMatrix round =
        permute_qt_matrix(permute_qt_matrix(qt, order), inverse_permutation(order));
    const SparseMatrix& a = qt.off_diagonal();
    const SparseMatrix& b = round.off_diagonal();
    ASSERT_EQ(b.nonzeros(), a.nonzeros());
    EXPECT_EQ(b.bandwidth(), a.bandwidth());
    for (index_type i = 0; i < n; ++i) {
        EXPECT_EQ(round.diagonal(i), qt.diagonal(i));
        const auto ac = a.row_cols(i);
        const auto bc = b.row_cols(i);
        ASSERT_EQ(bc.size(), ac.size()) << "row " << i;
        for (std::size_t p = 0; p < ac.size(); ++p) {
            EXPECT_EQ(bc[p], ac[p]);
            EXPECT_EQ(b.row_values(i)[p], a.row_values(i)[p]);
        }
    }
}

/// The solver-facing round trip: scramble A into B = permute(A, s), then
/// solve B with permutation = s^-1. The engine's internal matrix is then
/// exactly A, its sweeps are the direct solve's sweeps, and the returned
/// distribution must be the direct solve's distribution relabeled into B's
/// indexing — bitwise, not approximately.
TEST(Ordering, ScrambledSolveWithInverseOrderingIsBitwiseExact) {
    const index_type n = 150;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 21));
    const std::vector<index_type> order = shuffled_order(n, 22);
    const QtMatrix scrambled = permute_qt_matrix(qt, order);

    SolveOptions options;
    options.tolerance = 1e-12;
    const SolveResult direct = default_engine().solve(qt, options);
    ASSERT_TRUE(direct.converged);

    SolveOptions unscramble = options;
    unscramble.permutation = inverse_permutation(order);
    const SolveResult via = default_engine().solve(scrambled, unscramble);
    ASSERT_TRUE(via.converged);

    EXPECT_EQ(via.iterations, direct.iterations);
    EXPECT_EQ(via.residual, direct.residual);
    EXPECT_EQ(via.residual_evaluations, direct.residual_evaluations);
    for (index_type p = 0; p < n; ++p) {
        // B-state p is A-state order[p].
        EXPECT_EQ(via.distribution[static_cast<std::size_t>(p)],
                  direct.distribution[static_cast<std::size_t>(
                      order[static_cast<std::size_t>(p)])])
            << "state " << p;
    }
}

TEST(Ordering, IdentityPermutationIsSkippedBitwise) {
    const index_type n = 80;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 31));
    SolveOptions plain;
    plain.tolerance = 1e-12;
    SolveOptions with_identity = plain;
    with_identity.permutation.resize(static_cast<std::size_t>(n));
    std::iota(with_identity.permutation.begin(), with_identity.permutation.end(),
              index_type{0});
    const SolveResult a = default_engine().solve(qt, plain);
    const SolveResult b = default_engine().solve(qt, with_identity);
    EXPECT_EQ(b.distribution, a.distribution);
    EXPECT_EQ(b.iterations, a.iterations);
    EXPECT_EQ(b.residual, a.residual);
}

/// A minimal matrix-free QtOperatorConcept model: a 3-state ring. (Local
/// classes cannot hold the member template the concept needs.)
struct RingOp {
    index_type size() const { return 3; }
    double diagonal(index_type) const { return -1.0; }
    template <typename F>
    void for_each_incoming(index_type i, F&& f) const {
        f((i + 2) % 3, 1.0);
    }
};

TEST(Ordering, PermutationRejectedForMatrixFreeOperators) {
    SolveOptions options;
    options.permutation = {2, 0, 1};
    EXPECT_THROW(default_engine().solve(RingOp{}, options), std::invalid_argument);
}

TEST(Ordering, MalformedPermutationRejectedForMatrices) {
    const index_type n = 12;
    const QtMatrix qt = qt_from_triplets(n, random_chain(n, 41));
    SolveOptions options;
    options.permutation = {1, 0};  // wrong size
    EXPECT_THROW(default_engine().solve(qt, options), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::ctmc
