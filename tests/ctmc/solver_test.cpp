#include "ctmc/solver.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "ctmc/gth.hpp"

namespace gprsim::ctmc {
namespace {

/// Random irreducible generator: a ring backbone (guarantees irreducibility)
/// plus random extra transitions.
std::vector<Triplet> random_chain(index_type n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> rate(0.1, 10.0);
    std::uniform_int_distribution<index_type> pick(0, n - 1);
    std::vector<Triplet> triplets;
    for (index_type i = 0; i < n; ++i) {
        triplets.push_back({i, (i + 1) % n, rate(rng)});
    }
    for (index_type e = 0; e < 3 * n; ++e) {
        const index_type i = pick(rng);
        const index_type j = pick(rng);
        if (i != j) {
            triplets.push_back({i, j, rate(rng)});
        }
    }
    return triplets;
}

QtMatrix qt_from_triplets(index_type n, const std::vector<Triplet>& triplets) {
    return build_qt_matrix(n, [&](index_type i, auto&& emit) {
        for (const Triplet& t : triplets) {
            if (t.row == i) {
                emit(t.col, t.value);
            }
        }
    });
}

SparseMatrix generator_from_triplets(index_type n, std::vector<Triplet> triplets) {
    std::vector<double> exit(static_cast<std::size_t>(n), 0.0);
    for (const Triplet& t : triplets) {
        exit[static_cast<std::size_t>(t.row)] += t.value;
    }
    for (index_type i = 0; i < n; ++i) {
        triplets.push_back({i, i, -exit[static_cast<std::size_t>(i)]});
    }
    return SparseMatrix::from_triplets(n, n, std::move(triplets));
}

class SolverMethods : public ::testing::TestWithParam<SolveMethod> {};

TEST_P(SolverMethods, MatchesGthOnRandomChains) {
    for (std::uint64_t seed : {7u, 13u, 99u}) {
        const index_type n = 40;
        const std::vector<Triplet> triplets = random_chain(n, seed);
        const std::vector<double> exact = solve_gth(generator_from_triplets(n, triplets));

        const QtMatrix qt = qt_from_triplets(n, triplets);
        SolveOptions options;
        options.method = GetParam();
        options.tolerance = 1e-13;
        options.max_iterations = 500000;
        const SolveResult result = solve_steady_state(qt, options);
        ASSERT_TRUE(result.converged) << "seed " << seed;
        for (index_type i = 0; i < n; ++i) {
            EXPECT_NEAR(result.distribution[static_cast<std::size_t>(i)],
                        exact[static_cast<std::size_t>(i)], 1e-9)
                << "state " << i << " seed " << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SolverMethods,
                         ::testing::Values(SolveMethod::gauss_seidel,
                                           SolveMethod::symmetric_gauss_seidel,
                                           SolveMethod::sor, SolveMethod::jacobi,
                                           SolveMethod::power,
                                           SolveMethod::red_black_gauss_seidel,
                                           SolveMethod::auto_select),
                         [](const auto& info) { return method_name(info.param); });

TEST(Solver, TwoStateChainExact) {
    const QtMatrix qt = build_qt_matrix(2, [](index_type i, auto&& emit) {
        if (i == 0) {
            emit(1, 2.0);
        } else {
            emit(0, 3.0);
        }
    });
    const SolveResult result = solve_steady_state(qt);
    ASSERT_TRUE(result.converged);
    EXPECT_NEAR(result.distribution[0], 0.6, 1e-10);
    EXPECT_NEAR(result.distribution[1], 0.4, 1e-10);
}

TEST(Solver, WarmStartReducesIterations) {
    const index_type n = 60;
    const std::vector<Triplet> triplets = random_chain(n, 5);
    const QtMatrix qt = qt_from_triplets(n, triplets);

    SolveOptions cold;
    cold.tolerance = 1e-13;
    const SolveResult first = solve_steady_state(qt, cold);
    ASSERT_TRUE(first.converged);

    SolveOptions warm = cold;
    warm.initial = first.distribution;
    const SolveResult second = solve_steady_state(qt, warm);
    ASSERT_TRUE(second.converged);
    EXPECT_LT(second.iterations, first.iterations);
}

TEST(Solver, ReportsNonConvergenceInsteadOfThrowing) {
    const std::vector<Triplet> triplets = random_chain(50, 3);
    const QtMatrix qt = qt_from_triplets(50, triplets);
    SolveOptions options;
    options.tolerance = 1e-16;  // unreachable
    options.max_iterations = 3;
    const SolveResult result = solve_steady_state(qt, options);
    EXPECT_FALSE(result.converged);
    EXPECT_GT(result.residual, 0.0);
}

TEST(Solver, RejectsBadInputs) {
    const QtMatrix qt = build_qt_matrix(2, [](index_type i, auto&& emit) {
        emit(1 - i, 1.0);
    });
    SolveOptions options;
    options.initial = {1.0};  // wrong size
    EXPECT_THROW(solve_steady_state(qt, options), std::invalid_argument);

    SolveOptions bad_relax;
    bad_relax.method = SolveMethod::sor;
    bad_relax.relaxation = 2.5;
    EXPECT_THROW(solve_steady_state(qt, bad_relax), std::invalid_argument);
}

TEST(Solver, ProgressCallbackIsInvoked) {
    const std::vector<Triplet> triplets = random_chain(30, 11);
    const QtMatrix qt = qt_from_triplets(30, triplets);
    int calls = 0;
    SolveOptions options;
    options.progress = [&](index_type, double) { ++calls; };
    const SolveResult result = solve_steady_state(qt, options);
    ASSERT_TRUE(result.converged);
    EXPECT_GT(calls, 0);
}

}  // namespace
}  // namespace gprsim::ctmc
