#include "ctmc/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gprsim::ctmc {
namespace {

TEST(SparseMatrix, EmptyMatrixHasNoEntries) {
    const SparseMatrix m = SparseMatrix::from_triplets(3, 3, {});
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 3);
    EXPECT_EQ(m.nonzeros(), 0);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
}

TEST(SparseMatrix, StoresAndLooksUpEntries) {
    const SparseMatrix m =
        SparseMatrix::from_triplets(2, 3, {{0, 2, 5.0}, {1, 0, -1.5}, {0, 0, 2.0}});
    EXPECT_EQ(m.nonzeros(), 3);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.at(0, 2), 5.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), -1.5);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(SparseMatrix, SumsDuplicateTriplets) {
    const SparseMatrix m =
        SparseMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {0, 1, 2.5}, {0, 1, -0.5}});
    EXPECT_EQ(m.nonzeros(), 1);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
}

TEST(SparseMatrix, SortsColumnsWithinRows) {
    const SparseMatrix m =
        SparseMatrix::from_triplets(1, 4, {{0, 3, 3.0}, {0, 1, 1.0}, {0, 2, 2.0}});
    const auto cols = m.row_cols(0);
    ASSERT_EQ(cols.size(), 3u);
    EXPECT_EQ(cols[0], 1);
    EXPECT_EQ(cols[1], 2);
    EXPECT_EQ(cols[2], 3);
    const auto values = m.row_values(0);
    EXPECT_DOUBLE_EQ(values[0], 1.0);
    EXPECT_DOUBLE_EQ(values[2], 3.0);
}

TEST(SparseMatrix, RejectsOutOfBoundsTriplets) {
    EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{2, 0, 1.0}}), std::out_of_range);
    EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{0, -1, 1.0}}), std::out_of_range);
}

TEST(SparseMatrix, MultiplyMatchesDenseComputation) {
    // [1 2; 3 4] * [5, 6] = [17, 39]
    const SparseMatrix m =
        SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}, {1, 1, 4.0}});
    const std::vector<double> x{5.0, 6.0};
    std::vector<double> y(2);
    m.multiply(x, y);
    EXPECT_DOUBLE_EQ(y[0], 17.0);
    EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(SparseMatrix, MultiplyTransposedMatchesTransposeMultiply) {
    const SparseMatrix m =
        SparseMatrix::from_triplets(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
    const std::vector<double> x{2.0, -1.0};
    std::vector<double> y1(3);
    m.multiply_transposed(x, y1);
    std::vector<double> y2(3);
    m.transpose().multiply(x, y2);
    for (int j = 0; j < 3; ++j) {
        EXPECT_DOUBLE_EQ(y1[static_cast<std::size_t>(j)], y2[static_cast<std::size_t>(j)]);
    }
}

TEST(SparseMatrix, TransposeSwapsEntries) {
    const SparseMatrix m = SparseMatrix::from_triplets(2, 3, {{0, 2, 7.0}, {1, 0, 4.0}});
    const SparseMatrix t = m.transpose();
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 2);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 7.0);
    EXPECT_DOUBLE_EQ(t.at(0, 1), 4.0);
}

TEST(SparseMatrix, FromCsrAcceptsValidArrays) {
    const SparseMatrix m =
        SparseMatrix::from_csr(2, 2, {0, 1, 2}, {1, 0}, {3.0, 4.0});
    EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 4.0);
}

TEST(SparseMatrix, FromCsrRejectsUnsortedColumns) {
    EXPECT_THROW(SparseMatrix::from_csr(1, 3, {0, 2}, {2, 1}, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(SparseMatrix, FromCsrRejectsInconsistentRowPtr) {
    EXPECT_THROW(SparseMatrix::from_csr(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(SparseMatrix::from_csr(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::ctmc
