#include "ctmc/uniformization.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ctmc/solver.hpp"

namespace gprsim::ctmc {
namespace {

QtMatrix two_state_chain(double a, double b) {
    return build_qt_matrix(2, [=](index_type i, auto&& emit) {
        if (i == 0) {
            emit(1, a);
        } else {
            emit(0, b);
        }
    });
}

TEST(Uniformization, TimeZeroReturnsInitial) {
    const QtMatrix qt = two_state_chain(1.0, 2.0);
    const std::vector<double> initial{1.0, 0.0};
    const std::vector<double> pi = transient_distribution(qt, initial, 0.0);
    EXPECT_DOUBLE_EQ(pi[0], 1.0);
    EXPECT_DOUBLE_EQ(pi[1], 0.0);
}

TEST(Uniformization, TwoStateChainMatchesAnalyticSolution) {
    // For a 2-state chain, p_01(t) = a/(a+b) (1 - e^{-(a+b)t}).
    const double a = 1.5;
    const double b = 0.5;
    const QtMatrix qt = two_state_chain(a, b);
    const std::vector<double> initial{1.0, 0.0};
    for (double t : {0.1, 0.5, 1.0, 3.0}) {
        const std::vector<double> pi = transient_distribution(qt, initial, t);
        const double expected1 = a / (a + b) * (1.0 - std::exp(-(a + b) * t));
        EXPECT_NEAR(pi[1], expected1, 1e-9) << "t = " << t;
        EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
    }
}

TEST(Uniformization, ConvergesToSteadyState) {
    const QtMatrix qt = two_state_chain(2.0, 3.0);
    const std::vector<double> initial{0.0, 1.0};
    const std::vector<double> pi = transient_distribution(qt, initial, 100.0);
    const SolveResult steady = solve_steady_state(qt);
    EXPECT_NEAR(pi[0], steady.distribution[0], 1e-8);
    EXPECT_NEAR(pi[1], steady.distribution[1], 1e-8);
}

TEST(Uniformization, RejectsBadInputs) {
    const QtMatrix qt = two_state_chain(1.0, 1.0);
    EXPECT_THROW(transient_distribution(qt, std::vector<double>{1.0}, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(transient_distribution(qt, std::vector<double>{1.0, 0.0}, -1.0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::ctmc
