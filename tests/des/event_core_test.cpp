// Event-core regression tests for the calendar-queue + arena engine:
// stale-handle safety across slot reuse, FIFO tie-break through bucket
// overflow, cursor rewind after run_until(), arena recycling bounds, and a
// randomized schedule/cancel/fire stress cross-checked event-for-event
// against a std::multimap oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "des/simulation.hpp"

namespace gprsim::des {
namespace {

TEST(EventCore, StaleHandleAfterSlotReuseDoesNotCancelNewOccupant) {
    // A fires and its arena slot is recycled for B. The stale handle to A
    // names (slot, old generation): cancelling it must return false and
    // leave B untouched.
    Simulation sim;
    bool a_fired = false;
    bool b_fired = false;
    EventHandle a = sim.schedule(1.0, [&] { a_fired = true; });
    EventHandle b;
    sim.schedule(2.0, [&] {
        // A fired at t=1; with LIFO slot reuse B lands in A's slot.
        b = sim.schedule(2.0, [&] { b_fired = true; });
        EXPECT_FALSE(sim.cancel(a));  // stale: must not hit B
    });
    sim.run();
    EXPECT_TRUE(a_fired);
    EXPECT_TRUE(b_fired);
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(EventCore, StaleHandleAfterManyReuseCyclesStaysStale) {
    // Drive one slot through many generations; every retired handle must
    // stay a detectable no-op, never cancelling the current occupant.
    Simulation sim;
    std::vector<EventHandle> retired;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        for (const EventHandle& h : retired) {
            EXPECT_FALSE(sim.cancel(h));
        }
        if (fired < 50) {
            retired.push_back(sim.schedule(1.0, chain));
        }
    };
    retired.push_back(sim.schedule(1.0, chain));
    sim.run();
    EXPECT_EQ(fired, 50);
    // One live event at a time: the arena must have recycled instead of
    // growing a slot per event.
    EXPECT_LE(sim.arena_slots(), 4u);
}

TEST(EventCore, FifoTieBreakThroughBucketOverflow) {
    // Many events at the same far-future time are parked in the calendar's
    // overflow list (their virtual bucket is beyond the current year) and
    // migrate into buckets later; scheduling order must still win ties.
    Simulation sim;
    // Establish a fine bucket width first: a dense burst of near events.
    for (int i = 0; i < 200; ++i) {
        sim.schedule(1e-4 * (i + 1), [] {});
    }
    std::vector<int> order;
    constexpr int kTies = 300;
    for (int i = 0; i < kTies; ++i) {
        sim.schedule_at(5000.0, [&order, i] { order.push_back(i); });
        // Interleave distinct times around the tied one; they must sort in
        // between without disturbing the tie-break.
        sim.schedule_at(5000.0 + (i + 1) * 1e-3, [] {});
    }
    sim.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kTies));
    for (int i = 0; i < kTies; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "FIFO violated at " << i;
    }
}

TEST(EventCore, ScheduleEarlierEventAfterRunUntilRewindsCursor) {
    // run_until() can leave the calendar cursor parked at a future event;
    // a later schedule before that event must rewind the scan so pops stay
    // globally ordered.
    Simulation sim;
    std::vector<int> order;
    sim.schedule_at(10.0, [&] { order.push_back(10); });
    sim.run_until(2.0);
    sim.schedule_at(3.0, [&] { order.push_back(3); });
    sim.schedule_at(2.5, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 10}));
}

TEST(EventCore, ArenaRecyclingBoundsSlotCount) {
    // A long self-rescheduling chain plus cancelled side events: the arena
    // high-water mark must track the *concurrent* population, not the
    // total event count.
    Simulation sim;
    int fired = 0;
    std::function<void()> tick = [&] {
        if (++fired >= 10000) {
            return;
        }
        EventHandle doomed = sim.schedule(0.5, [] { FAIL() << "cancelled event fired"; });
        sim.schedule(1.0, tick);
        EXPECT_TRUE(sim.cancel(doomed));
    };
    sim.schedule(1.0, tick);
    sim.run();
    EXPECT_EQ(fired, 10000);
    EXPECT_LE(sim.arena_slots(), 16u) << "slot recycling failed to bound the pool";
}

TEST(EventCore, RandomizedStressMatchesMultimapOracle) {
    // Random mix of schedule / cancel / fire against a std::multimap keyed
    // by (time, sequence) — the reference total order. Every fired event,
    // its firing time, and every cancel() return value must match.
    Simulation sim;
    std::mt19937_64 rng(20010414);  // ICDCS 2001 vintage

    struct Oracle {
        std::multimap<std::pair<double, std::uint64_t>, std::uint64_t> queue;
        std::uint64_t next_seq = 0;
        double now = 0.0;
    } oracle;

    std::vector<std::uint64_t> fired_sim;
    std::vector<std::uint64_t> fired_oracle;
    std::vector<double> fired_times;

    struct Live {
        EventHandle handle;
        std::pair<double, std::uint64_t> key;  // oracle key, for erase
        std::uint64_t id;
    };
    std::vector<Live> live;

    std::uint64_t next_id = 0;
    std::function<void(double)> do_schedule = [&](double horizon) {
        std::uniform_real_distribution<double> delay(0.0, horizon);
        const double t = oracle.now + delay(rng);
        const std::uint64_t id = next_id++;
        const auto key = std::make_pair(t, oracle.next_seq++);
        EventHandle h = sim.schedule_at(t, [&, id] { fired_sim.push_back(id); });
        oracle.queue.emplace(key, id);
        live.push_back(Live{h, key, id});
    };

    // Three phases with different time scales exercise width re-estimation
    // and the overflow list: dense, sparse/far, then dense again.
    const double horizons[] = {0.01, 1000.0, 0.05};
    for (double horizon : horizons) {
        for (int step = 0; step < 3000; ++step) {
            const int action = static_cast<int>(rng() % 100);
            if (action < 55 || oracle.queue.empty()) {
                do_schedule(horizon);
            } else if (action < 75 && !live.empty()) {
                // Cancel a random handle (may already be fired/cancelled).
                const std::size_t pick = rng() % live.size();
                const bool was_pending = oracle.queue.count(live[pick].key) > 0 &&
                                         oracle.queue.find(live[pick].key)->second ==
                                             live[pick].id;
                EXPECT_EQ(sim.cancel(live[pick].handle), was_pending);
                if (was_pending) {
                    oracle.queue.erase(live[pick].key);
                }
                live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
            } else {
                // Fire the earliest event in both worlds.
                const auto it = oracle.queue.begin();
                oracle.now = it->first.first;
                fired_oracle.push_back(it->second);
                oracle.queue.erase(it);
                const std::size_t before = fired_sim.size();
                ASSERT_TRUE(sim.run_until(oracle.now));
                ASSERT_EQ(fired_sim.size(), before + 1)
                    << "expected exactly one event at t=" << oracle.now;
                fired_times.push_back(sim.now());
            }
        }
    }
    // Drain: remaining events must pop in exactly oracle order.
    while (!oracle.queue.empty()) {
        fired_oracle.push_back(oracle.queue.begin()->second);
        oracle.queue.erase(oracle.queue.begin());
    }
    sim.run();
    ASSERT_EQ(fired_sim.size(), fired_oracle.size());
    for (std::size_t i = 0; i < fired_sim.size(); ++i) {
        ASSERT_EQ(fired_sim[i], fired_oracle[i]) << "divergence at event " << i;
    }
    EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(EventCore, CancellationHeavyChurnKeepsCalendarConsistent) {
    // Schedule/cancel churn where most events never fire: lazily reclaimed
    // calendar entries must not disturb ordering or leak slots.
    Simulation sim;
    std::mt19937_64 rng(7);
    std::vector<EventHandle> pending;
    int fired = 0;
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 50; ++i) {
            pending.push_back(sim.schedule(
                1.0 + static_cast<double>(rng() % 1000) / 100.0, [&] { ++fired; }));
        }
        // Cancel 80% of what we just scheduled.
        for (int i = 0; i < 40; ++i) {
            const std::size_t pick = rng() % pending.size();
            EXPECT_TRUE(sim.cancel(pending[pick]));
            pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        // Drain the round: firing + surfacing the cancelled entries
        // reclaims their slots, so the arena stays round-sized.
        sim.run_until(sim.now() + 20.0);
        pending.clear();  // everything fired or was cancelled
    }
    EXPECT_EQ(fired, 200 * 10);
    EXPECT_EQ(sim.events_pending(), 0u);
    // 10000 events scheduled overall, but at most 50 live at once: slot
    // recycling must keep the pool at round size, not total size.
    EXPECT_LE(sim.arena_slots(), 256u);
}

}  // namespace
}  // namespace gprsim::des
