#include "des/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gprsim::des {
namespace {

constexpr int kSamples = 200000;

TEST(RandomStream, UniformMomentsAndRange) {
    RandomStream rng(12345);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double u = rng.uniform();
        ASSERT_GT(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        sum_sq += u * u;
    }
    const double mean = sum / kSamples;
    const double var = sum_sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(RandomStream, ExponentialMeanAndVariance) {
    RandomStream rng(99);
    const double target_mean = 7.5;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double x = rng.exponential(target_mean);
        ASSERT_GE(x, 0.0);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kSamples;
    const double var = sum_sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, target_mean, 0.15);
    // Exponential: var = mean^2.
    EXPECT_NEAR(var / (target_mean * target_mean), 1.0, 0.05);
}

TEST(RandomStream, GeometricCountMeanAndSupport) {
    RandomStream rng(7);
    const double target_mean = 25.0;  // N_d of the 3GPP model
    double sum = 0.0;
    int minimum = 1 << 30;
    for (int i = 0; i < kSamples; ++i) {
        const int x = rng.geometric_count(target_mean);
        ASSERT_GE(x, 1);
        minimum = std::min(minimum, x);
        sum += x;
    }
    EXPECT_EQ(minimum, 1);
    EXPECT_NEAR(sum / kSamples, target_mean, 0.5);
}

TEST(RandomStream, GeometricCountMeanOneIsDegenerate) {
    RandomStream rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.geometric_count(1.0), 1);
    }
}

TEST(RandomStream, BernoulliFrequency) {
    RandomStream rng(11);
    int hits = 0;
    for (int i = 0; i < kSamples; ++i) {
        if (rng.bernoulli(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RandomStream, UniformIntCoversRange) {
    RandomStream rng(17);
    std::vector<int> counts(6, 0);
    for (int i = 0; i < 60000; ++i) {
        const int v = rng.uniform_int(0, 5);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 5);
        ++counts[static_cast<std::size_t>(v)];
    }
    for (int c : counts) {
        EXPECT_NEAR(c, 10000, 500);
    }
}

TEST(RandomStream, SameSeedSameStreamReproduces) {
    RandomStream a(42, 3);
    RandomStream b(42, 3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(RandomStream, DifferentStreamsDiffer) {
    RandomStream a(42, 0);
    RandomStream b(42, 1);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) {
            ++equal;
        }
    }
    EXPECT_EQ(equal, 0);
}

TEST(RandomStream, RejectsInvalidParameters) {
    RandomStream rng(1);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW(rng.geometric_count(0.5), std::invalid_argument);
    EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
    EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::des
