#include "des/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gprsim::des {
namespace {

constexpr int kSamples = 200000;

TEST(RandomStream, UniformMomentsAndRange) {
    RandomStream rng(12345);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double u = rng.uniform();
        ASSERT_GT(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        sum_sq += u * u;
    }
    const double mean = sum / kSamples;
    const double var = sum_sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(RandomStream, ExponentialMeanAndVariance) {
    RandomStream rng(99);
    const double target_mean = 7.5;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double x = rng.exponential(target_mean);
        ASSERT_GE(x, 0.0);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kSamples;
    const double var = sum_sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, target_mean, 0.15);
    // Exponential: var = mean^2.
    EXPECT_NEAR(var / (target_mean * target_mean), 1.0, 0.05);
}

TEST(RandomStream, GeometricCountMeanAndSupport) {
    RandomStream rng(7);
    const double target_mean = 25.0;  // N_d of the 3GPP model
    double sum = 0.0;
    int minimum = 1 << 30;
    for (int i = 0; i < kSamples; ++i) {
        const int x = rng.geometric_count(target_mean);
        ASSERT_GE(x, 1);
        minimum = std::min(minimum, x);
        sum += x;
    }
    EXPECT_EQ(minimum, 1);
    EXPECT_NEAR(sum / kSamples, target_mean, 0.5);
}

TEST(RandomStream, GeometricCountMeanOneIsDegenerate) {
    RandomStream rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.geometric_count(1.0), 1);
    }
}

TEST(RandomStream, BernoulliFrequency) {
    RandomStream rng(11);
    int hits = 0;
    for (int i = 0; i < kSamples; ++i) {
        if (rng.bernoulli(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RandomStream, UniformIntCoversRange) {
    RandomStream rng(17);
    std::vector<int> counts(6, 0);
    for (int i = 0; i < 60000; ++i) {
        const int v = rng.uniform_int(0, 5);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 5);
        ++counts[static_cast<std::size_t>(v)];
    }
    for (int c : counts) {
        EXPECT_NEAR(c, 10000, 500);
    }
}

TEST(RandomStream, SameSeedSameStreamReproduces) {
    RandomStream a(42, 3);
    RandomStream b(42, 3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(RandomStream, DifferentStreamsDiffer) {
    RandomStream a(42, 0);
    RandomStream b(42, 1);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) {
            ++equal;
        }
    }
    EXPECT_EQ(equal, 0);
}

TEST(RandomStream, AdjacentStreamIdsAreUncorrelated) {
    // Low-entropy adjacent stream ids are exactly what the replication
    // substream blocks hand out (0, 1, 2, ...); the SplitMix64 mixing must
    // keep their uniform sequences statistically independent. With n draws
    // the sample correlation of independent streams is ~N(0, 1/sqrt(n));
    // 0.03 is ~4 sigma for n = 20000.
    constexpr int n = 20000;
    for (std::uint64_t id = 0; id < 8; ++id) {
        RandomStream a(0, id);
        RandomStream b(0, id + 1);
        double sum_a = 0.0, sum_b = 0.0, sum_ab = 0.0, sum_a2 = 0.0, sum_b2 = 0.0;
        for (int i = 0; i < n; ++i) {
            const double x = a.uniform();
            const double y = b.uniform();
            sum_a += x;
            sum_b += y;
            sum_ab += x * y;
            sum_a2 += x * x;
            sum_b2 += y * y;
        }
        const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
        const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
        const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
        const double corr = cov / std::sqrt(var_a * var_b);
        EXPECT_LT(std::fabs(corr), 0.03) << "streams " << id << " and " << id + 1;
    }
}

TEST(RandomStream, OldXorMultiplyCollisionPairsNoLongerCollide) {
    // The pre-fix seeding reduced (seed, stream_id) to
    // seed ^ (0xd1342543de82ef95 * (stream_id + 1)), so pairs constructed
    // to xor to the same value produced IDENTICAL streams. The SplitMix64
    // absorption must separate them.
    constexpr std::uint64_t c = 0xd1342543de82ef95ULL;
    const std::uint64_t seed1 = 42;
    const std::uint64_t id1 = 3, id2 = 9;
    const std::uint64_t seed2 = seed1 ^ (c * (id1 + 1)) ^ (c * (id2 + 1));
    RandomStream a(seed1, id1);
    RandomStream b(seed2, id2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) {
            ++equal;
        }
    }
    EXPECT_EQ(equal, 0);
}

TEST(RandomStream, RejectsInvalidParameters) {
    RandomStream rng(1);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW(rng.geometric_count(0.5), std::invalid_argument);
    EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
    EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::des
