// Edge-case behaviour of the event calendar: reentrant scheduling and
// cancellation, callback-owned state, and horizon boundaries.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "des/simulation.hpp"

namespace gprsim::des {
namespace {

TEST(SimulationEdge, CancelFromInsideCallback) {
    Simulation sim;
    bool second_fired = false;
    EventHandle second;
    sim.schedule(1.0, [&] { sim.cancel(second); });
    second = sim.schedule(2.0, [&] { second_fired = true; });
    sim.run();
    EXPECT_FALSE(second_fired);
}

TEST(SimulationEdge, CancelOwnHandleWhileFiringIsHarmless) {
    Simulation sim;
    EventHandle self;
    int fired = 0;
    self = sim.schedule(1.0, [&] {
        ++fired;
        sim.cancel(self);  // already popped; must not corrupt the calendar
    });
    sim.schedule(2.0, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimulationEdge, CancelAlreadyFiredHandleDuringCallbackIsNoOp) {
    // A dwell timer may fire, and only later does another callback (session
    // teardown) try to cancel the stale handle: the cancel must report
    // "not pending" and leave the calendar fully intact.
    Simulation sim;
    EventHandle first;
    int fired = 0;
    first = sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(2.0, [&] {
        EXPECT_FALSE(sim.cancel(first));  // fired at t=1: stale handle
        EXPECT_FALSE(sim.cancel(first));  // idempotent
        ++fired;
    });
    sim.schedule(3.0, [&] { ++fired; });  // later events must still run
    sim.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(sim.events_executed(), 3u);
    EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulationEdge, RescheduleSameCallbackRepeatedly) {
    // The dwell-timer pattern: cancel + re-schedule across "cells".
    Simulation sim;
    EventHandle timer;
    int moves = 0;
    std::function<void()> move = [&] {
        ++moves;
        if (moves < 5) {
            timer = sim.schedule(1.0, move);
        }
    };
    timer = sim.schedule(1.0, move);
    sim.run();
    EXPECT_EQ(moves, 5);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulationEdge, ZeroDelayEventsRunAtCurrentTime) {
    Simulation sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] {
        order.push_back(1);
        sim.schedule(0.0, [&] { order.push_back(2); });
    });
    sim.schedule(1.0, [&] { order.push_back(3); });
    sim.run();
    // The zero-delay event at t=1 was scheduled after "3" existed, so FIFO
    // tie-breaking runs 1, 3, then 2.
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(SimulationEdge, HorizonBoundaryIsInclusive) {
    Simulation sim;
    int fired = 0;
    sim.schedule(2.0, [&] { ++fired; });
    sim.run_until(2.0);
    EXPECT_EQ(fired, 1);
}

TEST(SimulationEdge, CallbackStateOutlivesHandle) {
    // Callbacks own their captures (shared_ptr pattern used by the
    // simulator's sessions).
    Simulation sim;
    auto counter = std::make_shared<int>(0);
    {
        auto local = counter;
        sim.schedule(1.0, [local] { ++*local; });
    }
    sim.run();
    EXPECT_EQ(*counter, 1);
}

TEST(SimulationEdge, ManyEventsKeepStrictOrdering) {
    Simulation sim;
    double last = -1.0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        // Deterministic pseudo-random times with exact duplicates mixed in.
        const double t = static_cast<double>((i * 7919) % 1000) / 10.0;
        sim.schedule_at(t, [&, t] {
            if (sim.now() < last) {
                monotone = false;
            }
            last = sim.now();
            (void)t;
        });
    }
    sim.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(sim.events_executed(), 10000u);
}

}  // namespace
}  // namespace gprsim::des
