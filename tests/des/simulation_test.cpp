#include "des/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gprsim::des {
namespace {

TEST(Simulation, ExecutesEventsInTimeOrder) {
    Simulation sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
    EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, SimultaneousEventsFireInScheduleOrder) {
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        sim.schedule(1.0, [&, i] { order.push_back(i); });
    }
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
    Simulation sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10) {
            sim.schedule(1.0, chain);
        }
    };
    sim.schedule(1.0, chain);
    sim.run();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulation, CancelPreventsExecution) {
    Simulation sim;
    bool fired = false;
    const EventHandle handle = sim.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(handle));
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulation, CancelInvalidHandleIsNoOp) {
    Simulation sim;
    EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulation, RunUntilAdvancesClockToHorizon) {
    Simulation sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(5.0, [&] { ++fired; });
    sim.run_until(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    sim.run_until(10.0);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulation, StopEndsRunEarly) {
    Simulation sim;
    int fired = 0;
    sim.schedule(1.0, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(2.0, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    // A fresh run() resumes with the remaining events.
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, PendingCountExcludesCancelled) {
    Simulation sim;
    sim.schedule(1.0, [] {});
    const EventHandle h = sim.schedule(2.0, [] {});
    EXPECT_EQ(sim.events_pending(), 2u);
    sim.cancel(h);
    EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(Simulation, RejectsInvalidScheduling) {
    Simulation sim;
    EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_at(-0.5, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule(1.0, EventCallback{}), std::invalid_argument);
    sim.schedule(5.0, [] {});
    sim.run_until(5.0);
    EXPECT_THROW(sim.run_until(4.0), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::des
