#include "des/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "des/random.hpp"

namespace gprsim::des {
namespace {

TEST(Welford, MeanAndVarianceMatchDirectComputation) {
    Welford w;
    const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double v : values) {
        w.add(v);
    }
    EXPECT_EQ(w.count(), 8u);
    EXPECT_NEAR(w.mean(), 5.0, 1e-12);
    // Sample variance of the classic dataset: 32/7.
    EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Welford, SingleSampleHasZeroVariance) {
    Welford w;
    w.add(3.0);
    EXPECT_DOUBLE_EQ(w.variance(), 0.0);
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
    TimeWeighted tw(0.0, 0.0);
    tw.update(1.0, 2.0);  // value 0 on [0,1), 2 on [1,3), 4 on [3,4]
    tw.update(3.0, 4.0);
    EXPECT_NEAR(tw.mean(4.0), (0.0 * 1.0 + 2.0 * 2.0 + 4.0 * 1.0) / 4.0, 1e-12);
}

TEST(TimeWeighted, RestartOpensNewWindow) {
    TimeWeighted tw(0.0, 1.0);
    tw.update(2.0, 3.0);
    const double first = tw.restart(4.0);
    EXPECT_NEAR(first, (1.0 * 2.0 + 3.0 * 2.0) / 4.0, 1e-12);
    // New window starts at t=4 with the current value 3.
    EXPECT_NEAR(tw.mean(6.0), 3.0, 1e-12);
}

TEST(TimeWeighted, RejectsTimeTravel) {
    TimeWeighted tw(1.0, 0.0);
    tw.update(2.0, 1.0);
    EXPECT_THROW(tw.update(1.5, 2.0), std::invalid_argument);
}

TEST(StudentT, KnownQuantiles) {
    EXPECT_NEAR(student_t_quantile(1, 0.95), 12.706, 1e-3);
    EXPECT_NEAR(student_t_quantile(10, 0.95), 2.228, 1e-3);
    EXPECT_NEAR(student_t_quantile(30, 0.95), 2.042, 1e-3);
    EXPECT_NEAR(student_t_quantile(1000, 0.95), 1.960, 1e-3);
    EXPECT_NEAR(student_t_quantile(5, 0.99), 4.032, 1e-3);
    EXPECT_NEAR(student_t_quantile(20, 0.90), 1.725, 1e-3);
    EXPECT_THROW(student_t_quantile(0, 0.95), std::invalid_argument);
    EXPECT_THROW(student_t_quantile(5, 0.80), std::invalid_argument);
}

TEST(BatchMeans, IntervalShrinksWithMoreBatches) {
    RandomStream rng(5);
    BatchMeans few;
    BatchMeans many;
    for (int i = 0; i < 5; ++i) {
        few.add_batch(rng.exponential(1.0));
    }
    RandomStream rng2(5);
    for (int i = 0; i < 50; ++i) {
        many.add_batch(rng2.exponential(1.0));
    }
    EXPECT_GT(few.half_width(), 0.0);
    EXPECT_LT(many.half_width(), few.half_width());
}

TEST(BatchMeans, CoversTrueMeanTypically) {
    // 95% CI over batches of i.i.d. exponentials should cover the true mean
    // in the vast majority of replications.
    int covered = 0;
    const int reps = 200;
    for (int rep = 0; rep < reps; ++rep) {
        RandomStream rng(static_cast<std::uint64_t>(rep) + 1);
        BatchMeans bm;
        for (int b = 0; b < 20; ++b) {
            Welford batch;
            for (int i = 0; i < 50; ++i) {
                batch.add(rng.exponential(2.0));
            }
            bm.add_batch(batch.mean());
        }
        if (bm.covers(2.0)) {
            ++covered;
        }
    }
    // Expected ~190/200; allow generous slack to stay deterministic.
    EXPECT_GE(covered, 175);
}

TEST(BatchMeans, FewerThanTwoBatchesHasZeroWidth) {
    BatchMeans bm;
    EXPECT_DOUBLE_EQ(bm.half_width(), 0.0);
    bm.add_batch(1.0);
    EXPECT_DOUBLE_EQ(bm.half_width(), 0.0);
    EXPECT_TRUE(bm.covers(1.0));
}

TEST(ReplicationStats, PoolsIndependentReplicationMeans) {
    ReplicationStats stats;
    for (double mean : {1.0, 2.0, 3.0, 4.0}) {
        stats.add_replication(mean);
    }
    EXPECT_EQ(stats.replications(), 4);
    EXPECT_NEAR(stats.mean(), 2.5, 1e-12);
    // Sample stddev of {1,2,3,4} is sqrt(5/3); t_{3, 0.975} = 3.182.
    EXPECT_NEAR(stats.half_width(), 3.182 * std::sqrt(5.0 / 3.0) / 2.0, 1e-3);
    EXPECT_TRUE(stats.covers(2.5));
    EXPECT_FALSE(stats.covers(100.0));
}

TEST(ReplicationStats, WidthShrinksLikeRootOfReplicationCount) {
    // i.i.d. replication means: quadrupling the replication count must cut
    // the half width roughly in half (plus the t-quantile tightening).
    RandomStream rng(77);
    ReplicationStats few;
    for (int r = 0; r < 8; ++r) {
        few.add_replication(rng.exponential(3.0));
    }
    RandomStream rng2(77);
    ReplicationStats many;
    for (int r = 0; r < 32; ++r) {
        many.add_replication(rng2.exponential(3.0));
    }
    ASSERT_GT(few.half_width(), 0.0);
    const double ratio = many.half_width() / few.half_width();
    EXPECT_GT(ratio, 0.2);
    EXPECT_LT(ratio, 0.8);
}

TEST(ReplicationStats, FewerThanTwoReplicationsHasZeroWidth) {
    ReplicationStats stats;
    EXPECT_DOUBLE_EQ(stats.half_width(), 0.0);
    stats.add_replication(2.0);
    EXPECT_DOUBLE_EQ(stats.half_width(), 0.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
    EXPECT_TRUE(stats.covers(2.0));
}

}  // namespace
}  // namespace gprsim::des
