// Structural properties of the large-population approximations, beyond
// point agreement: the fixed point is a property of the map, not of the
// damping schedule used to reach it; the fluid limit is exact in the
// scaled N -> infinity sense, so its error against the exact chain must
// fall as the whole cell is scaled up; and both backends are pure serial
// double arithmetic per point, so grids are bitwise identical across
// repeat calls, thread counts, and dispatch entry points.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/measures.hpp"
#include "core/parameters.hpp"
#include "eval/evaluator.hpp"
#include "eval/registry.hpp"

namespace gprsim::eval {
namespace {

Evaluator& backend(const char* name) {
    auto found = BackendRegistry::global().find(name);
    EXPECT_TRUE(found.ok()) << name;
    return *found.value();
}

/// Mid-size cell, light-to-moderate load (queue below the flow-control
/// onset, sessions uncapped).
ScenarioQuery mid_query() {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.parameters.total_channels = 12;
    query.parameters.reserved_pdch = 3;
    query.parameters.buffer_capacity = 20;
    query.parameters.max_gprs_sessions = 10;
    query.parameters.gprs_fraction = 0.05;
    query.call_arrival_rate = 0.03;
    return query;
}

TEST(FixedPointProperties, ResultInvariantToDamping) {
    // Any damping factor in (0, 1] walks to the same fixed point; only the
    // sweep count changes. The iterate converges to fp_tolerance, so the
    // measures derived from it agree far tighter than any model error.
    std::vector<core::Measures> results;
    std::vector<long long> sweeps;
    for (const double damping : {0.4, 0.7, 1.0}) {
        ScenarioQuery query = mid_query();
        query.approx.fp_damping = damping;
        auto point = backend("fixed-point").evaluate(query);
        ASSERT_TRUE(point.ok()) << "damping " << damping;
        results.push_back(point.value().measures);
        sweeps.push_back(point.value().iterations);
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        const auto near = [&](double a, double b, const char* what) {
            EXPECT_NEAR(a, b, 1e-6 * std::max({std::fabs(a), std::fabs(b), 1.0}))
                << what << " at damping index " << i;
        };
        near(results[i].carried_data_traffic, results[0].carried_data_traffic, "cdt");
        near(results[i].throughput_per_user_kbps,
             results[0].throughput_per_user_kbps, "atu");
        near(results[i].carried_voice_traffic, results[0].carried_voice_traffic,
             "cvt");
        near(results[i].average_gprs_sessions, results[0].average_gprs_sessions,
             "ags");
        near(results[i].mean_queue_length, results[0].mean_queue_length, "mql");
    }
    // Heavier damping takes more sweeps — the schedules genuinely differed.
    EXPECT_GT(sweeps[0], sweeps[2]);
}

TEST(FluidProperties, ErrorShrinksUpTheScalingLadder) {
    // Scale every extensive quantity of the cell by c (channels, reserved
    // PDCHs, buffer, session cap, arrival rate): the CTMC converges to the
    // fluid limit, so the fluid backend's relative CDT error against the
    // exact chain must be strictly decreasing in c. Rates stay light so
    // the non-scaling flow-control onset floor(eta K) never engages.
    std::vector<double> errors;
    for (const int c : {1, 2, 3}) {
        ScenarioQuery query;
        query.parameters = core::Parameters::base();
        query.parameters.total_channels = 5 * c;
        query.parameters.reserved_pdch = 2 * c;
        query.parameters.buffer_capacity = 8 * c;
        query.parameters.max_gprs_sessions = 4 * c;
        query.parameters.gprs_fraction = 0.05;
        query.call_arrival_rate = 0.008 * c;
        query.solver.tolerance = 1e-10;

        auto exact = backend("ctmc").evaluate(query);
        auto fluid = backend("fluid").evaluate(query);
        ASSERT_TRUE(exact.ok()) << "c=" << c << ": " << exact.error().to_string();
        ASSERT_TRUE(fluid.ok()) << "c=" << c << ": " << fluid.error().to_string();
        const double reference = exact.value().measures.carried_data_traffic;
        ASSERT_GT(reference, 0.0) << "c=" << c;
        errors.push_back(
            std::fabs(fluid.value().measures.carried_data_traffic - reference) /
            reference);
    }
    for (std::size_t i = 1; i < errors.size(); ++i) {
        EXPECT_LT(errors[i], errors[i - 1])
            << "fluid CDT error not decreasing at ladder step " << i << " ("
            << errors[i - 1] << " -> " << errors[i] << ")";
    }
}

void expect_bitwise_equal(const core::Measures& a, const core::Measures& b,
                          const char* what) {
    EXPECT_EQ(a.carried_data_traffic, b.carried_data_traffic) << what;
    EXPECT_EQ(a.packet_loss_probability, b.packet_loss_probability) << what;
    EXPECT_EQ(a.queueing_delay, b.queueing_delay) << what;
    EXPECT_EQ(a.throughput_per_user_kbps, b.throughput_per_user_kbps) << what;
    EXPECT_EQ(a.mean_queue_length, b.mean_queue_length) << what;
    EXPECT_EQ(a.carried_voice_traffic, b.carried_voice_traffic) << what;
    EXPECT_EQ(a.average_gprs_sessions, b.average_gprs_sessions) << what;
    EXPECT_EQ(a.gsm_blocking, b.gsm_blocking) << what;
    EXPECT_EQ(a.gprs_blocking, b.gprs_blocking) << what;
}

TEST(ApproxDeterminism, BitwiseStableAcrossRepeatsAndThreadCounts) {
    const std::vector<double> rates{0.02, 0.03, 0.04};
    const ScenarioQuery base = mid_query();
    common::ThreadPool pool(4);
    for (const char* name : {"fixed-point", "fluid"}) {
        // Serial single-grid reference, evaluated twice: repeat-stable.
        auto first = backend(name).evaluate_grid(base, rates, {});
        auto second = backend(name).evaluate_grid(base, rates, {});
        ASSERT_TRUE(first.ok()) << name;
        ASSERT_TRUE(second.ok()) << name;
        for (std::size_t i = 0; i < rates.size(); ++i) {
            expect_bitwise_equal(first.value()[i].measures,
                                 second.value()[i].measures, name);
        }
        // Batched dispatch at 1 and 4 threads: thread-count-stable.
        for (const int threads : {1, 4}) {
            GridOptions options;
            options.num_threads = threads;
            options.pool = threads > 1 ? &pool : nullptr;
            auto batch = backend(name).evaluate_grids(
                std::span<const ScenarioQuery>(&base, 1), rates, options);
            ASSERT_EQ(batch.size(), 1u) << name;
            ASSERT_TRUE(batch.front().ok()) << name << " threads=" << threads;
            for (std::size_t i = 0; i < rates.size(); ++i) {
                expect_bitwise_equal(batch.front().value()[i].measures,
                                     first.value()[i].measures, name);
            }
        }
    }
}

}  // namespace
}  // namespace gprsim::eval
