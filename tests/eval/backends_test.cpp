// Built-in backends through the unified API: Result error paths (forced
// non-convergence with scenario context, invalid queries), mm1k-approx
// sanity against the erlang closed forms, ctmc agreement with the
// GprsModel facade, des provenance, and grid/pointwise consistency. Cells
// are tiny so every chain solves in milliseconds.
#include "eval/backends.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hpp"
#include "core/model.hpp"
#include "eval/registry.hpp"

namespace gprsim::eval {
namespace {

Evaluator& backend(const char* name) {
    auto found = BackendRegistry::global().find(name);
    EXPECT_TRUE(found.ok()) << name;
    return *found.value();
}

/// Tiny cell shared by the solve tests: a few thousand states.
ScenarioQuery tiny_query() {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.parameters.total_channels = 6;
    query.parameters.buffer_capacity = 10;
    query.parameters.max_gprs_sessions = 6;
    query.parameters.gprs_fraction = 0.1;
    query.call_arrival_rate = 0.5;
    query.solver.tolerance = 1e-10;
    return query;
}

TEST(ErlangBackend, MatchesClosedFormMeasures) {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.call_arrival_rate = 0.5;
    auto point = backend("erlang").evaluate(query);
    ASSERT_TRUE(point.ok());
    const core::Parameters p = query.resolved_parameters();
    const core::Measures expected =
        core::closed_form_measures(p, core::balance_handover(p));
    EXPECT_DOUBLE_EQ(point.value().measures.carried_voice_traffic,
                     expected.carried_voice_traffic);
    EXPECT_DOUBLE_EQ(point.value().measures.gprs_blocking, expected.gprs_blocking);
    EXPECT_EQ(point.value().iterations, 0);
    EXPECT_FALSE(point.value().has_confidence);
}

TEST(Mm1kApproxBackend, SharesErlangPopulationsAndFillsDataPlane) {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.call_arrival_rate = 0.5;
    auto erlang = backend("erlang").evaluate(query);
    auto approx = backend("mm1k-approx").evaluate(query);
    ASSERT_TRUE(erlang.ok());
    ASSERT_TRUE(approx.ok());
    const core::Measures& e = erlang.value().measures;
    const core::Measures& a = approx.value().measures;
    // The populations are the same closed forms.
    EXPECT_DOUBLE_EQ(a.carried_voice_traffic, e.carried_voice_traffic);
    EXPECT_DOUBLE_EQ(a.average_gprs_sessions, e.average_gprs_sessions);
    EXPECT_DOUBLE_EQ(a.gsm_blocking, e.gsm_blocking);
    EXPECT_DOUBLE_EQ(a.gprs_blocking, e.gprs_blocking);
    // ... but the approximation also fills the data plane, which the
    // closed forms leave at zero.
    EXPECT_GT(a.carried_data_traffic, 0.0);
    EXPECT_GT(a.throughput_per_user_kbps, 0.0);
    EXPECT_GE(a.packet_loss_probability, 0.0);
    EXPECT_LE(a.packet_loss_probability, 1.0);
    EXPECT_GE(a.queueing_delay, 0.0);
    EXPECT_EQ(e.carried_data_traffic, 0.0);
}

TEST(Mm1kApproxBackend, TracksCtmcOnTheBaseParameterPoint) {
    // The decoupled M/M/c/K is only an approximation, but on the paper's
    // base point it should land within a few percent of the exact chain
    // (observed: CDT 0.662 vs 0.660). A tiny cell keeps the solve fast.
    const ScenarioQuery query = tiny_query();
    auto exact = backend("ctmc").evaluate(query);
    auto approx = backend("mm1k-approx").evaluate(query);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    EXPECT_NEAR(approx.value().measures.carried_data_traffic,
                exact.value().measures.carried_data_traffic,
                0.25 * exact.value().measures.carried_data_traffic + 0.05);
}

TEST(CtmcBackend, AgreesWithGprsModelFacade) {
    const ScenarioQuery query = tiny_query();
    auto point = backend("ctmc").evaluate(query);
    ASSERT_TRUE(point.ok());

    core::GprsModel model(query.resolved_parameters());
    ctmc::SolveOptions options;
    options.tolerance = query.solver.tolerance;
    model.solve(options);
    const core::Measures expected = model.measures();
    EXPECT_DOUBLE_EQ(point.value().measures.carried_data_traffic,
                     expected.carried_data_traffic);
    EXPECT_DOUBLE_EQ(point.value().measures.queueing_delay, expected.queueing_delay);
    EXPECT_GT(point.value().iterations, 0);
    EXPECT_LE(point.value().residual, query.solver.tolerance);
}

TEST(CtmcBackend, ForcedNonConvergenceIsTypedWithScenarioContext) {
    ScenarioQuery query = tiny_query();
    query.solver.tolerance = 1e-14;
    query.solver.max_iterations = 3;  // cannot converge in 3 sweeps
    auto point = backend("ctmc").evaluate(query);
    ASSERT_FALSE(point.ok());
    EXPECT_EQ(point.error().code, common::EvalErrorCode::non_convergence);
    // The message names the scenario, not just "did not converge".
    EXPECT_NE(point.error().message.find("did not converge"), std::string::npos);
    EXPECT_NE(point.error().message.find("rate=0.5"), std::string::npos);
    EXPECT_NE(point.error().message.find("PDCH"), std::string::npos);
}

TEST(CtmcBackend, InvalidQueryIsTypedNotThrown) {
    ScenarioQuery negative = tiny_query();
    negative.call_arrival_rate = -1.0;
    auto point = backend("ctmc").evaluate(negative);
    ASSERT_FALSE(point.ok());
    EXPECT_EQ(point.error().code, common::EvalErrorCode::invalid_query);

    ScenarioQuery inconsistent = tiny_query();
    inconsistent.parameters.reserved_pdch = 99;  // > total_channels
    auto bad = backend("ctmc").evaluate(inconsistent);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(bad.error().message.find("reserved"), std::string::npos);
}

TEST(CtmcBackend, GridRejectsUnsortedRates) {
    const ScenarioQuery query = tiny_query();
    const std::vector<double> unsorted{0.5, 0.3};
    auto grid = backend("ctmc").evaluate_grid(query, unsorted);
    ASSERT_FALSE(grid.ok());
    EXPECT_EQ(grid.error().code, common::EvalErrorCode::invalid_query);
}

TEST(CtmcBackend, ColdGridMatchesPointwiseEvaluationsBitwise) {
    const ScenarioQuery query = tiny_query();
    const std::vector<double> rates{0.3, 0.5, 0.7};
    GridOptions cold;
    cold.warm_start = false;
    auto grid = backend("ctmc").evaluate_grid(query, rates, cold);
    ASSERT_TRUE(grid.ok());
    ASSERT_EQ(grid.value().size(), 3u);
    for (std::size_t i = 0; i < rates.size(); ++i) {
        ScenarioQuery point_query = query;
        point_query.call_arrival_rate = rates[i];
        auto point = backend("ctmc").evaluate(point_query);
        ASSERT_TRUE(point.ok());
        // A cold grid point and a standalone evaluation run the identical
        // product-form-started serial solve.
        EXPECT_EQ(grid.value()[i].measures.carried_data_traffic,
                  point.value().measures.carried_data_traffic)
            << i;
        EXPECT_EQ(grid.value()[i].iterations, point.value().iterations) << i;
        EXPECT_EQ(grid.value()[i].warm_parent, -1) << i;
    }
}

TEST(CtmcBackend, WarmGridReportsTransfersAndAgreesWithCold) {
    ScenarioQuery query = tiny_query();
    query.parameters.gprs_fraction = 0.3;  // strongly coupled: transfers win
    query.parameters.total_channels = 8;
    query.parameters.buffer_capacity = 25;
    query.parameters.max_gprs_sessions = 10;
    const std::vector<double> rates{0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0};
    GridOptions warm;
    warm.warm_start = true;
    GridOptions cold;
    cold.warm_start = false;
    auto warm_grid = backend("ctmc").evaluate_grid(query, rates, warm);
    auto cold_grid = backend("ctmc").evaluate_grid(query, rates, cold);
    ASSERT_TRUE(warm_grid.ok());
    ASSERT_TRUE(cold_grid.ok());

    long long warm_iterations = 0;
    long long cold_iterations = 0;
    int offered = 0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        warm_iterations += warm_grid.value()[i].iterations;
        cold_iterations += cold_grid.value()[i].iterations;
        offered += warm_grid.value()[i].warm_parent >= 0 ? 1 : 0;
        EXPECT_NEAR(warm_grid.value()[i].measures.carried_data_traffic,
                    cold_grid.value()[i].measures.carried_data_traffic, 1e-4)
            << i;
    }
    EXPECT_EQ(offered, static_cast<int>(rates.size()) - 1);  // all but the root
    EXPECT_LT(warm_iterations, cold_iterations);
}

TEST(CtmcBackend, AutoMethodProvenanceIsRecordedAndThreadStable) {
    // The default solver.method is "auto". Campaign/grid points always solve
    // at width 1 (the points are the parallelism), so the cost model sees
    // only the state count and the recorded decision must not depend on the
    // grid's thread budget.
    const ScenarioQuery query = tiny_query();
    auto point = backend("ctmc").evaluate(query);
    ASSERT_TRUE(point.ok());
    EXPECT_EQ(point.value().solver_method, "gauss_seidel");
    EXPECT_FALSE(point.value().solver_reason.empty());

    const std::vector<double> rates{0.3, 0.5, 0.7};
    GridOptions narrow;
    narrow.num_threads = 1;
    common::ThreadPool pool(4);
    GridOptions wide;
    wide.num_threads = 4;
    wide.pool = &pool;
    auto serial = backend("ctmc").evaluate_grid(query, rates, narrow);
    auto sharded = backend("ctmc").evaluate_grid(query, rates, wide);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(sharded.ok());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        EXPECT_EQ(serial.value()[i].solver_method, "gauss_seidel") << i;
        EXPECT_EQ(sharded.value()[i].solver_method, serial.value()[i].solver_method)
            << i;
        EXPECT_EQ(sharded.value()[i].solver_reason, serial.value()[i].solver_reason)
            << i;
        EXPECT_EQ(sharded.value()[i].measures.carried_data_traffic,
                  serial.value()[i].measures.carried_data_traffic)
            << i;
    }
}

TEST(CtmcBackend, ExplicitMethodIsHonoredAndRecorded) {
    ScenarioQuery query = tiny_query();
    query.solver.method = "gauss_seidel";
    auto explicit_gs = backend("ctmc").evaluate(query);
    ASSERT_TRUE(explicit_gs.ok());
    EXPECT_EQ(explicit_gs.value().solver_method, "gauss_seidel");
    // An explicit method carries no cost-model rationale.
    EXPECT_TRUE(explicit_gs.value().solver_reason.empty());

    // auto resolves to the same serial solve on this cell: bitwise equal.
    ScenarioQuery auto_query = tiny_query();
    auto_query.solver.method = "auto";
    auto picked = backend("ctmc").evaluate(auto_query);
    ASSERT_TRUE(picked.ok());
    EXPECT_EQ(picked.value().measures.carried_data_traffic,
              explicit_gs.value().measures.carried_data_traffic);
    EXPECT_EQ(picked.value().iterations, explicit_gs.value().iterations);
}

TEST(CtmcBackend, UnknownSolverMethodIsTypedInvalidQuery) {
    ScenarioQuery query = tiny_query();
    query.solver.method = "bogus_scheme";
    auto point = backend("ctmc").evaluate(query);
    ASSERT_FALSE(point.ok());
    EXPECT_EQ(point.error().code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(point.error().message.find("bogus_scheme"), std::string::npos);
}

TEST(DesBackend, ProvenanceCarriesReplicationsAndCis) {
    ScenarioQuery query = tiny_query();
    query.simulation.replications = 2;
    query.simulation.warmup_time = 50.0;
    query.simulation.batch_count = 3;
    query.simulation.batch_duration = 100.0;
    query.simulation.seed = 11;
    auto point = backend("des").evaluate(query);
    ASSERT_TRUE(point.ok());
    EXPECT_TRUE(point.value().has_confidence);
    EXPECT_EQ(point.value().sim.replications.size(), 2u);
    EXPECT_GT(point.value().sim.events_executed, 0u);
    EXPECT_DOUBLE_EQ(point.value().measures.carried_data_traffic,
                     point.value().sim.carried_data_traffic.mean);
    EXPECT_EQ(point.value().iterations, 0);
}

TEST(Backends, EvaluateGridOnEmptyRatesIsEmpty) {
    const ScenarioQuery query = tiny_query();
    const std::vector<double> none;
    for (const char* name : {"erlang", "ctmc", "des", "mm1k-approx"}) {
        auto grid = backend(name).evaluate_grid(query, none);
        ASSERT_TRUE(grid.ok()) << name;
        EXPECT_TRUE(grid.value().empty()) << name;
    }
}

}  // namespace
}  // namespace gprsim::eval
