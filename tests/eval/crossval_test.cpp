// Cross-validation of the analytic backends against each other: every pair
// of {erlang, ctmc, mm1k-approx, fixed-point, fluid} is swept over a small
// overlap grid — a 12-channel cell whose exact chain solves in
// milliseconds — and every measure the pair shares must agree within the
// sum of the two backends' per-measure tolerances. The exact chain carries
// tolerance zero, so each approximation's row in the table is its measured
// error bound against ground truth (the ISSUE-level acceptance pin is the
// 2% CDT/ATU entry of the fixed-point and fluid rows), and approximation
// pairs inherit the triangle-inequality bound. Failure messages print the
// full scenario via Parameters::describe().
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/measures.hpp"
#include "core/parameters.hpp"
#include "eval/evaluator.hpp"
#include "eval/registry.hpp"

namespace gprsim::eval {
namespace {

/// The overlap cell: light-to-moderate load where every backend is inside
/// its validity envelope (sessions uncapped, mild voice blocking, queue
/// below the flow-control onset), so the comparison measures model error,
/// not regime mismatch.
ScenarioQuery overlap_query() {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.parameters.total_channels = 12;
    query.parameters.reserved_pdch = 3;
    query.parameters.buffer_capacity = 20;
    query.parameters.max_gprs_sessions = 10;
    query.parameters.gprs_fraction = 0.05;
    query.call_arrival_rate = 0.02;
    query.solver.tolerance = 1e-10;
    return query;
}

const std::vector<double> kOverlapRates{0.02, 0.03};

/// How a measure is compared: relative against max(|a|, |b|, floor), or
/// absolutely (probabilities near zero).
enum class Compare { relative, absolute };

struct MeasureSpec {
    const char* name;
    double core::Measures::* field;
    Compare compare;
    double floor;  ///< relative-mode scale floor
};

const MeasureSpec kMeasures[] = {
    {"cdt", &core::Measures::carried_data_traffic, Compare::relative, 1e-3},
    {"plp", &core::Measures::packet_loss_probability, Compare::absolute, 0.0},
    {"qd", &core::Measures::queueing_delay, Compare::relative, 1e-3},
    {"atu", &core::Measures::throughput_per_user_kbps, Compare::relative, 1e-3},
    {"mql", &core::Measures::mean_queue_length, Compare::relative, 1e-2},
    {"cvt", &core::Measures::carried_voice_traffic, Compare::relative, 1e-3},
    {"ags", &core::Measures::average_gprs_sessions, Compare::relative, 1e-3},
    {"gsm_blocking", &core::Measures::gsm_blocking, Compare::absolute, 0.0},
    {"gprs_blocking", &core::Measures::gprs_blocking, Compare::absolute, 0.0},
};

/// Per-backend tolerance against the exact chain, in kMeasures order;
/// a negative entry marks a measure the backend does not produce (erlang
/// leaves the data plane at zero; mm1k-approx models the queue without the
/// PDCH/session correlation, so its delay-side columns are unsupported).
struct BackendTolerances {
    const char* name;
    double tolerance[std::size(kMeasures)];
};

const BackendTolerances kBackends[] = {
    // The exact reference.
    {"ctmc", {0, 0, 0, 0, 0, 0, 0, 0, 0}},
    // Closed-form populations only.
    {"erlang", {-1, -1, -1, -1, -1, 5e-3, 5e-3, 1e-3, 1e-3}},
    // Decoupled M/M/c/K data plane over the closed-form populations.
    {"mm1k-approx", {2e-2, 1e-3, -1, 2e-2, -1, 5e-3, 5e-3, 1e-3, 1e-3}},
    // The acceptance pin: CDT and ATU within 2% of the exact chain.
    {"fixed-point", {2e-2, 1e-3, 0.5, 2e-2, 0.5, 5e-3, 5e-3, 1e-3, 1e-3}},
    {"fluid", {2e-2, 1e-3, 0.5, 2e-2, 0.5, 5e-2, 5e-2, 2e-2, 2e-2}},
};

TEST(CrossValidation, AnalyticBackendPairsAgreeWithinToleranceTables) {
    // Evaluate every backend once per grid point, then compare all pairs.
    std::vector<std::vector<core::Measures>> results(std::size(kBackends));
    for (std::size_t b = 0; b < std::size(kBackends); ++b) {
        Evaluator* backend = nullptr;
        {
            auto found = BackendRegistry::global().find(kBackends[b].name);
            ASSERT_TRUE(found.ok()) << kBackends[b].name;
            backend = found.value();
        }
        for (const double rate : kOverlapRates) {
            ScenarioQuery query = overlap_query();
            query.call_arrival_rate = rate;
            auto point = backend->evaluate(query);
            ASSERT_TRUE(point.ok())
                << kBackends[b].name << ": " << point.error().to_string();
            results[b].push_back(point.value().measures);
        }
    }

    for (std::size_t a = 0; a < std::size(kBackends); ++a) {
        for (std::size_t b = a + 1; b < std::size(kBackends); ++b) {
            for (std::size_t r = 0; r < kOverlapRates.size(); ++r) {
                core::Parameters scenario = overlap_query().parameters;
                scenario.call_arrival_rate = kOverlapRates[r];
                for (std::size_t m = 0; m < std::size(kMeasures); ++m) {
                    const double tol_a = kBackends[a].tolerance[m];
                    const double tol_b = kBackends[b].tolerance[m];
                    if (tol_a < 0.0 || tol_b < 0.0) {
                        continue;  // unsupported by one side
                    }
                    const MeasureSpec& spec = kMeasures[m];
                    const double va = results[a][r].*spec.field;
                    const double vb = results[b][r].*spec.field;
                    const double allowed = tol_a + tol_b;
                    const double delta = std::fabs(va - vb);
                    const double bound =
                        spec.compare == Compare::absolute
                            ? allowed
                            : allowed * std::max({std::fabs(va), std::fabs(vb),
                                                  spec.floor});
                    EXPECT_LE(delta, bound)
                        << spec.name << ": " << kBackends[a].name << "=" << va
                        << " vs " << kBackends[b].name << "=" << vb
                        << " (|delta| " << delta << " > " << bound << ") at ["
                        << scenario.describe() << "]";
                }
            }
        }
    }
}

}  // namespace
}  // namespace gprsim::eval
