// Multi-grid batches through the unified API: evaluate_grids slot
// isolation (one variant's typed error never poisons another's grid),
// bitwise agreement between batched, looped, and single-grid evaluation at
// every thread count, the des substream discipline across batched
// variants, and the registry-level evaluate_campaign merge (waves <
// sequential waves). Cells are tiny so every chain solves in milliseconds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "eval/backends.hpp"
#include "eval/batch.hpp"
#include "eval/registry.hpp"

namespace gprsim::eval {
namespace {

Evaluator& backend(const char* name) {
    auto found = BackendRegistry::global().find(name);
    EXPECT_TRUE(found.ok()) << name;
    return *found.value();
}

/// Tiny cell shared by the batch tests: a few thousand states.
ScenarioQuery tiny_query() {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.parameters.total_channels = 6;
    query.parameters.buffer_capacity = 10;
    query.parameters.max_gprs_sessions = 6;
    query.parameters.gprs_fraction = 0.1;
    query.call_arrival_rate = 0.5;
    query.solver.tolerance = 1e-10;
    query.simulation.replications = 2;
    query.simulation.warmup_time = 50.0;
    query.simulation.batch_count = 3;
    query.simulation.batch_duration = 100.0;
    return query;
}

/// Three distinguishable variants of the tiny cell.
std::vector<ScenarioQuery> tiny_variants() {
    std::vector<ScenarioQuery> queries(3, tiny_query());
    queries[1].parameters.reserved_pdch = 2;
    queries[2].parameters.gprs_fraction = 0.2;
    return queries;
}

void expect_bitwise_equal(const PointEvaluation& a, const PointEvaluation& b) {
    EXPECT_EQ(std::memcmp(&a.measures.carried_data_traffic,
                          &b.measures.carried_data_traffic, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.measures.queueing_delay, &b.measures.queueing_delay,
                          sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.measures.packet_loss_probability,
                          &b.measures.packet_loss_probability, sizeof(double)), 0);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.warm_parent, b.warm_parent);
    EXPECT_EQ(a.warm_started, b.warm_started);
    if (a.has_confidence || b.has_confidence) {
        EXPECT_EQ(a.has_confidence, b.has_confidence);
        EXPECT_EQ(std::memcmp(&a.sim.carried_data_traffic.mean,
                              &b.sim.carried_data_traffic.mean, sizeof(double)), 0);
        EXPECT_EQ(a.sim.events_executed, b.sim.events_executed);
    }
}

TEST(EvaluateGrids, EmptyBatchAndEmptyGrid) {
    const std::vector<double> rates{0.3, 0.5};
    for (const char* name : {"erlang", "ctmc", "des", "mm1k-approx"}) {
        // No queries: no outcomes.
        EXPECT_TRUE(backend(name)
                        .evaluate_grids(std::span<const ScenarioQuery>{}, rates)
                        .empty())
            << name;
        // Queries but no rates: one OK empty grid per query.
        const std::vector<ScenarioQuery> queries(2, tiny_query());
        auto outcomes = backend(name).evaluate_grids(queries, std::vector<double>{});
        ASSERT_EQ(outcomes.size(), 2u) << name;
        for (const GridOutcome& outcome : outcomes) {
            ASSERT_TRUE(outcome.ok()) << name;
            EXPECT_TRUE(outcome.value().empty()) << name;
        }
    }
}

TEST(EvaluateGrids, SingleQueryBatchMatchesEvaluateGridBitwise) {
    const std::vector<double> rates{0.3, 0.5, 0.7, 0.9};
    for (const char* name : {"erlang", "ctmc", "des", "mm1k-approx"}) {
        const ScenarioQuery query = tiny_query();
        auto grid = backend(name).evaluate_grid(query, rates);
        auto batch = backend(name).evaluate_grids(
            std::span<const ScenarioQuery>(&query, 1), rates);
        ASSERT_TRUE(grid.ok()) << name;
        ASSERT_EQ(batch.size(), 1u) << name;
        ASSERT_TRUE(batch.front().ok()) << name;
        ASSERT_EQ(batch.front().value().size(), rates.size()) << name;
        for (std::size_t i = 0; i < rates.size(); ++i) {
            expect_bitwise_equal(batch.front().value()[i], grid.value()[i]);
        }
    }
}

TEST(EvaluateGrids, BatchMatchesLoopedGridsBitwiseAtEveryWidth) {
    // The batched path must reproduce the sequential per-variant loop
    // exactly: same warm-start schedules per variant, same substream
    // blocks (variant q starts at grid_offset q * rates.size()).
    const std::vector<double> rates{0.3, 0.5, 0.7};
    const std::vector<ScenarioQuery> queries = tiny_variants();
    common::ThreadPool pool(4);
    for (const char* name : {"ctmc", "des"}) {
        std::vector<GridOutcome> looped;
        for (std::size_t q = 0; q < queries.size(); ++q) {
            GridOptions options;
            options.grid_offset = q * rates.size();
            looped.push_back(backend(name).evaluate_grid(queries[q], rates, options));
            ASSERT_TRUE(looped.back().ok()) << name;
        }
        for (const int threads : {1, 4}) {
            GridOptions options;
            options.num_threads = threads;
            options.pool = threads > 1 ? &pool : nullptr;
            auto batch = backend(name).evaluate_grids(queries, rates, options);
            ASSERT_EQ(batch.size(), queries.size()) << name;
            for (std::size_t q = 0; q < queries.size(); ++q) {
                ASSERT_TRUE(batch[q].ok()) << name << " q=" << q;
                for (std::size_t i = 0; i < rates.size(); ++i) {
                    expect_bitwise_equal(batch[q].value()[i], looped[q].value()[i]);
                }
            }
        }
    }
}

TEST(EvaluateGrids, InvalidVariantDoesNotPoisonTheOthers) {
    const std::vector<double> rates{0.3, 0.5};
    std::vector<ScenarioQuery> queries = tiny_variants();
    queries[1].parameters.reserved_pdch = 99;  // > total_channels
    for (const char* name : {"ctmc", "des"}) {
        auto outcomes = backend(name).evaluate_grids(queries, rates);
        ASSERT_EQ(outcomes.size(), 3u) << name;
        ASSERT_FALSE(outcomes[1].ok()) << name;
        EXPECT_EQ(outcomes[1].error().code, common::EvalErrorCode::invalid_query)
            << name;
        EXPECT_NE(outcomes[1].error().message.find("reserved"), std::string::npos)
            << name;
        for (const std::size_t q : {0u, 2u}) {
            ASSERT_TRUE(outcomes[q].ok()) << name << " q=" << q;
            ASSERT_EQ(outcomes[q].value().size(), rates.size()) << name;
            // The healthy variants' grids are exactly what a standalone
            // batch of just them would have produced.
            GridOptions options;
            options.grid_offset = q * rates.size();
            auto alone = backend(name).evaluate_grid(queries[q], rates, options);
            ASSERT_TRUE(alone.ok());
            for (std::size_t i = 0; i < rates.size(); ++i) {
                expect_bitwise_equal(outcomes[q].value()[i], alone.value()[i]);
            }
        }
    }
}

TEST(EvaluateGrids, NonConvergingVariantFailsAloneWithTypedError) {
    const std::vector<double> rates{0.3, 0.5};
    std::vector<ScenarioQuery> queries = tiny_variants();
    queries[2].solver.tolerance = 1e-14;
    queries[2].solver.max_iterations = 3;  // cannot converge in 3 sweeps
    auto outcomes = backend("ctmc").evaluate_grids(queries, rates);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_TRUE(outcomes[1].ok());
    ASSERT_FALSE(outcomes[2].ok());
    EXPECT_EQ(outcomes[2].error().code, common::EvalErrorCode::non_convergence);
    EXPECT_NE(outcomes[2].error().message.find("did not converge"), std::string::npos);
}

TEST(EvaluateGrids, BatchRejectsUnsortedRatesInEverySlot) {
    const std::vector<double> unsorted{0.5, 0.3};
    const std::vector<ScenarioQuery> queries = tiny_variants();
    for (const char* name : {"ctmc", "des"}) {
        auto outcomes = backend(name).evaluate_grids(queries, unsorted);
        ASSERT_EQ(outcomes.size(), 3u) << name;
        for (const GridOutcome& outcome : outcomes) {
            ASSERT_FALSE(outcome.ok()) << name;
            EXPECT_EQ(outcome.error().code, common::EvalErrorCode::invalid_query)
                << name;
        }
    }
}

TEST(PlanGrids, CtmcSharesWavesAcrossVariantsAndDesIsFlat) {
    const std::vector<double> rates{0.3, 0.4, 0.5, 0.6, 0.7};
    const std::vector<ScenarioQuery> queries = tiny_variants();
    GridOptions options;
    GridPlan ctmc_plan = backend("ctmc").plan_grids(queries, rates, options);
    const SolveSchedule schedule = bisection_schedule(rates.size(), true);
    EXPECT_EQ(ctmc_plan.waves, schedule.levels.size());
    EXPECT_EQ(ctmc_plan.sequential_waves, schedule.levels.size() * queries.size());
    EXPECT_EQ(ctmc_plan.tasks.size(), rates.size() * queries.size());

    GridPlan des_plan = backend("des").plan_grids(queries, rates, options);
    EXPECT_EQ(des_plan.waves, 1u);
    EXPECT_EQ(des_plan.sequential_waves, queries.size());
    EXPECT_EQ(des_plan.tasks.size(),
              rates.size() * queries.size() *
                  static_cast<std::size_t>(queries[0].simulation.replications));
    // Executing our own plans: every task, then collect, yields the grids.
    for (GridPlan* plan : {&ctmc_plan, &des_plan}) {
        for (std::size_t wave = 0; wave < plan->waves; ++wave) {
            for (BatchTask& task : plan->tasks) {
                if (task.wave == wave) {
                    task.run();
                }
            }
        }
        auto outcomes = plan->collect();
        ASSERT_EQ(outcomes.size(), queries.size());
        for (const GridOutcome& outcome : outcomes) {
            ASSERT_TRUE(outcome.ok());
            EXPECT_EQ(outcome.value().size(), rates.size());
        }
    }
}

TEST(EvaluateCampaign, MergesBackendsIntoFewerWavesThanSequential) {
    CampaignRequest request;
    request.backends = {"ctmc", "des", "erlang"};
    request.queries = tiny_variants();
    request.rates = {0.3, 0.4, 0.5, 0.6, 0.7};
    common::ThreadPool pool(4);
    GridOptions options;
    options.num_threads = 4;
    options.pool = &pool;
    auto evaluated = evaluate_campaign(BackendRegistry::global(), request, options);
    ASSERT_TRUE(evaluated.ok());
    const CampaignEvaluation& evaluation = evaluated.value();
    ASSERT_EQ(evaluation.outcomes.size(), 3u);
    for (std::size_t b = 0; b < 3; ++b) {
        ASSERT_EQ(evaluation.outcomes[b].size(), request.queries.size());
        for (const GridOutcome& outcome : evaluation.outcomes[b]) {
            ASSERT_TRUE(outcome.ok());
            ASSERT_EQ(outcome.value().size(), request.rates.size());
        }
    }
    // The merged depth is the deepest plan (ctmc's bisection schedule);
    // sequentially the same work queues 3 ctmc grids + 3 des grids + the
    // erlang closures one after another.
    const std::size_t ctmc_depth =
        bisection_schedule(request.rates.size(), true).levels.size();
    EXPECT_EQ(evaluation.stats.waves, ctmc_depth);
    EXPECT_GT(evaluation.stats.sequential_waves, evaluation.stats.waves);
    EXPECT_EQ(evaluation.stats.sequential_waves,
              3 * ctmc_depth + 3 + 3);  // ctmc + des + erlang(default plan)
    EXPECT_GE(evaluation.stats.max_wave_width,
              request.queries.size());  // cross-variant interleaving
    // Slots agree bitwise with standalone grids.
    GridOptions serial;
    auto ctmc_alone = backend("ctmc").evaluate_grids(request.queries, request.rates,
                                                     serial);
    for (std::size_t q = 0; q < request.queries.size(); ++q) {
        for (std::size_t i = 0; i < request.rates.size(); ++i) {
            expect_bitwise_equal(evaluation.outcomes[0][q].value()[i],
                                 ctmc_alone[q].value()[i]);
        }
    }
}

TEST(EvaluateCampaign, UnknownBackendFailsWholesale) {
    CampaignRequest request;
    request.backends = {"ctmc", "no-such-backend"};
    request.queries = {tiny_query()};
    request.rates = {0.5};
    auto evaluated = evaluate_campaign(BackendRegistry::global(), request);
    ASSERT_FALSE(evaluated.ok());
    EXPECT_EQ(evaluated.error().code, common::EvalErrorCode::unknown_backend);
}

TEST(EvaluateCampaign, ProgressReportsFlatBatchIndices) {
    CampaignRequest request;
    request.backends = {"ctmc"};
    request.queries = tiny_variants();
    request.rates = {0.3, 0.5};
    std::vector<int> seen(request.queries.size() * request.rates.size(), 0);
    GridOptions options;
    options.progress = [&](std::size_t flat, const PointEvaluation& point) {
        ASSERT_LT(flat, seen.size());
        ++seen[flat];
        EXPECT_GT(point.iterations, 0);
    };
    auto evaluated = evaluate_campaign(BackendRegistry::global(), request, options);
    ASSERT_TRUE(evaluated.ok());
    for (const int count : seen) {
        EXPECT_EQ(count, 1);
    }
}

}  // namespace
}  // namespace gprsim::eval
