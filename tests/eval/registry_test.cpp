// BackendRegistry: built-in self-registration, duplicate/unknown-name
// handling as typed Results (never exceptions), listing order, and
// third-party registration through the same path out-of-tree code uses.
#include "eval/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "eval/backends.hpp"

namespace gprsim::eval {
namespace {

/// Minimal custom backend: returns canned measures without touching any
/// engine, so registry behavior is tested in isolation.
class StubEvaluator final : public Evaluator {
public:
    explicit StubEvaluator(std::string name) : name_(std::move(name)) {}

    const std::string& name() const override { return name_; }
    const std::string& description() const override {
        static const std::string d = "registry test stub";
        return d;
    }

    common::Result<PointEvaluation> evaluate(const ScenarioQuery& query) override {
        if (common::Status v = query.validated(); !v.ok()) {
            return v.error();
        }
        PointEvaluation point;
        point.backend = name_;
        point.call_arrival_rate = query.call_arrival_rate;
        point.measures.carried_data_traffic = 1.25;
        return point;
    }

private:
    std::string name_;
};

TEST(BackendRegistry, BuiltinsAreRegistered) {
    BackendRegistry& registry = BackendRegistry::global();
    for (const char* name : {"erlang", "ctmc", "des", "mm1k-approx"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
    }
    EXPECT_FALSE(registry.contains("no-such-backend"));
}

TEST(BackendRegistry, ListIsSortedWithDescriptions) {
    const std::vector<BackendInfo> backends = BackendRegistry::global().list();
    ASSERT_GE(backends.size(), 4u);
    EXPECT_TRUE(std::is_sorted(backends.begin(), backends.end(),
                               [](const BackendInfo& a, const BackendInfo& b) {
                                   return a.name < b.name;
                               }));
    for (const BackendInfo& info : backends) {
        EXPECT_FALSE(info.name.empty());
        EXPECT_FALSE(info.description.empty()) << info.name;
    }
}

TEST(BackendRegistry, UnknownNameIsTypedErrorListingKnownBackends) {
    auto found = BackendRegistry::global().find("no-such-backend");
    ASSERT_FALSE(found.ok());
    EXPECT_EQ(found.error().code, common::EvalErrorCode::unknown_backend);
    EXPECT_NE(found.error().message.find("no-such-backend"), std::string::npos);
    EXPECT_NE(found.error().message.find("ctmc"), std::string::npos);
}

TEST(BackendRegistry, DuplicateRegistrationIsTypedError) {
    common::Status first = register_backend(
        "registry-test-dup", "stub",
        [] { return std::make_unique<StubEvaluator>("registry-test-dup"); });
    ASSERT_TRUE(first.ok());
    common::Status second = register_backend(
        "registry-test-dup", "stub again",
        [] { return std::make_unique<StubEvaluator>("registry-test-dup"); });
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, common::EvalErrorCode::duplicate_backend);
    EXPECT_NE(second.error().message.find("registry-test-dup"), std::string::npos);
}

TEST(BackendRegistry, EmptyNameAndMissingFactoryRejected) {
    EXPECT_FALSE(register_backend("", "nameless", [] {
                     return std::make_unique<StubEvaluator>("x");
                 }).ok());
    EXPECT_FALSE(
        BackendRegistry::global().add("registry-test-nofactory", "no factory", {}).ok());
}

TEST(BackendRegistry, CustomBackendResolvesAndEvaluates) {
    ASSERT_TRUE(register_backend("registry-test-custom", "stub", [] {
                    return std::make_unique<StubEvaluator>("registry-test-custom");
                }).ok());
    auto backend = BackendRegistry::global().find("registry-test-custom");
    ASSERT_TRUE(backend.ok());
    // The cached instance is reused across lookups.
    auto again = BackendRegistry::global().find("registry-test-custom");
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(backend.value(), again.value());

    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.call_arrival_rate = 0.4;
    auto point = backend.value()->evaluate(query);
    ASSERT_TRUE(point.ok());
    EXPECT_EQ(point.value().backend, "registry-test-custom");
    EXPECT_DOUBLE_EQ(point.value().measures.carried_data_traffic, 1.25);

    // The default evaluate_grid loops the single-point path in grid order.
    const std::vector<double> rates{0.2, 0.4, 0.6};
    auto grid = backend.value()->evaluate_grid(query, rates);
    ASSERT_TRUE(grid.ok());
    ASSERT_EQ(grid.value().size(), 3u);
    EXPECT_DOUBLE_EQ(grid.value()[2].call_arrival_rate, 0.6);
}

}  // namespace
}  // namespace gprsim::eval
