// Out-of-tree smoke consumer: proves the installed tree is usable through
// find_package(gprsim) alone — umbrella header, typed Results, and a
// third-party backend registered into the same registry the campaign layer
// dispatches through. Exits non-zero on the first failed check so CI fails
// loudly.
#include <gprsim/gprsim.hpp>

#include <cmath>
#include <cstdio>
#include <memory>

namespace {

using namespace gprsim;

/// A deliberately naive third-party backend: the cell as one M/M/1/K queue
/// with all PDCHs aggregated into a single fat server. Nobody should use
/// this for dimensioning — it exists to prove that registering a backend
/// requires nothing beyond the installed public surface.
class FatServerEvaluator final : public eval::Evaluator {
public:
    const std::string& name() const override {
        static const std::string n = "fat-server";
        return n;
    }
    const std::string& description() const override {
        static const std::string d =
            "out-of-tree demo: whole cell as one aggregated M/M/1/K server";
        return d;
    }

    common::Result<eval::PointEvaluation> evaluate(
        const eval::ScenarioQuery& query) override {
        if (common::Status v = query.validated(); !v.ok()) {
            return v.error();
        }
        const core::Parameters p = query.resolved_parameters();
        const core::BalancedTraffic balanced = core::balance_handover(p);
        core::Measures m = core::closed_form_measures(p, balanced);
        const double offered = m.average_gprs_sessions *
                               balanced.rates.on_admission_probability() *
                               balanced.rates.packet_rate;
        const double mu =
            balanced.rates.service_rate * static_cast<double>(p.total_channels);
        const queueing::FiniteQueueMetrics queue =
            queueing::mm1k(offered, mu, p.buffer_capacity);
        m.packet_loss_probability = queue.loss_probability;
        m.queueing_delay = queue.mean_delay;
        m.mean_queue_length = queue.mean_queue_length;
        m.carried_data_traffic = queue.throughput / balanced.rates.service_rate;

        eval::PointEvaluation point;
        point.backend = name();
        point.call_arrival_rate = query.call_arrival_rate;
        point.measures = m;
        return point;
    }
};

bool check(bool condition, const char* what) {
    std::printf("%-60s %s\n", what, condition ? "ok" : "FAIL");
    return condition;
}

}  // namespace

int main() {
    bool ok = true;

    // Built-ins are visible through the installed registry.
    ok &= check(eval::BackendRegistry::global().contains("ctmc"),
                "built-in ctmc backend registered");
    ok &= check(eval::BackendRegistry::global().contains("mm1k-approx"),
                "built-in mm1k-approx backend registered");

    // A custom backend registers once; a second registration is a typed
    // duplicate error, not an exception.
    common::Status registered = eval::register_backend(
        "fat-server", "out-of-tree demo backend",
        [] { return std::make_unique<FatServerEvaluator>(); });
    ok &= check(registered.ok(), "custom backend registration succeeds");
    common::Status duplicate = eval::register_backend(
        "fat-server", "dup", [] { return std::make_unique<FatServerEvaluator>(); });
    ok &= check(!duplicate.ok() &&
                    duplicate.error().code == common::EvalErrorCode::duplicate_backend,
                "re-registration reports duplicate_backend");

    // One ScenarioQuery through the custom backend.
    eval::ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.call_arrival_rate = 0.5;
    auto backend = eval::BackendRegistry::global().find("fat-server");
    ok &= check(backend.ok(), "custom backend resolvable by name");
    if (backend.ok()) {
        auto point = backend.value()->evaluate(query);
        ok &= check(point.ok(), "custom backend evaluates the base scenario");
        if (point.ok()) {
            const core::Measures& m = point.value().measures;
            ok &= check(m.carried_voice_traffic > 0.0 && m.queueing_delay >= 0.0 &&
                            std::isfinite(m.packet_loss_probability),
                        "custom backend returns finite measures");
        }
    }

    // Typed error paths work from out-of-tree code too.
    auto missing = eval::BackendRegistry::global().find("no-such-backend");
    ok &= check(!missing.ok() &&
                    missing.error().code == common::EvalErrorCode::unknown_backend,
                "unknown backend reports unknown_backend");
    query.call_arrival_rate = -1.0;
    auto invalid = eval::BackendRegistry::global().find("erlang").value()->evaluate(query);
    ok &= check(!invalid.ok() &&
                    invalid.error().code == common::EvalErrorCode::invalid_query,
                "invalid query reports invalid_query");

    std::printf("%s\n", ok ? "CONSUMER OK" : "CONSUMER FAILED");
    return ok ? 0 : 1;
}
