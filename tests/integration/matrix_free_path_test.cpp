// End-to-end check of the matrix-free solve path: forcing a zero memory
// budget must route GprsModel through the on-the-fly operator and produce
// the same measures as the CSR path (used for the 22M-state Fig. 10 chain,
// where this path is the only option).
#include <gtest/gtest.h>

#include "core/model.hpp"

namespace gprsim {
namespace {

core::Parameters small_parameters() {
    core::Parameters p = core::Parameters::base();
    p.total_channels = 5;
    p.reserved_pdch = 1;
    p.buffer_capacity = 8;
    p.max_gprs_sessions = 3;
    p.call_arrival_rate = 0.4;
    p.gprs_fraction = 0.3;
    p.traffic.mean_packet_calls = 3.0;
    p.traffic.mean_packets_per_call = 6.0;
    p.traffic.mean_packet_interarrival = 0.4;
    p.traffic.mean_reading_time = 6.0;
    return p;
}

TEST(MatrixFreePath, ProducesSameMeasuresAsCsr) {
    const core::Parameters p = small_parameters();
    ctmc::SolveOptions options;
    options.tolerance = 1e-11;

    core::GprsModel csr(p);
    csr.solve(options);
    ASSERT_FALSE(csr.used_matrix_free());
    const core::Measures m_csr = csr.measures();

    core::GprsModel free(p);
    free.set_memory_budget(0);  // force the matrix-free route
    free.solve(options);
    ASSERT_TRUE(free.used_matrix_free());
    const core::Measures m_free = free.measures();

    EXPECT_NEAR(m_free.carried_data_traffic, m_csr.carried_data_traffic, 1e-8);
    EXPECT_NEAR(m_free.packet_loss_probability, m_csr.packet_loss_probability, 1e-8);
    EXPECT_NEAR(m_free.queueing_delay, m_csr.queueing_delay, 1e-7);
    EXPECT_NEAR(m_free.mean_queue_length, m_csr.mean_queue_length, 1e-7);
    EXPECT_NEAR(m_free.throughput_per_user_kbps, m_csr.throughput_per_user_kbps, 1e-7);
}

TEST(MatrixFreePath, DistributionsAgreeStateByState) {
    const core::Parameters p = small_parameters();
    ctmc::SolveOptions options;
    options.tolerance = 1e-12;

    core::GprsModel csr(p);
    csr.solve(options);
    core::GprsModel free(p);
    free.set_memory_budget(0);
    free.solve(options);

    const auto& a = csr.distribution();
    const auto& b = free.distribution();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], 1e-9);
    }
}

}  // namespace
}  // namespace gprsim
