// The paper's Section 5.2 methodology as an automated test: the Markov
// model's measures must fall inside (or near) the detailed simulator's 95%
// confidence intervals on a configuration small enough to run in seconds.
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "sim/simulator.hpp"

namespace gprsim {
namespace {

/// Downsized joint configuration: one shared Parameters value drives both
/// the chain and the simulator, exactly as in the paper's validation.
core::Parameters joint_parameters() {
    core::Parameters p = core::Parameters::base();
    p.total_channels = 6;
    p.reserved_pdch = 1;
    p.buffer_capacity = 15;
    p.max_gprs_sessions = 5;
    p.call_arrival_rate = 0.25;
    p.gprs_fraction = 0.3;
    p.mean_gsm_call_duration = 60.0;
    p.mean_gsm_dwell_time = 60.0;
    p.mean_gprs_dwell_time = 60.0;
    // Busy on/off data source (heavy-load traffic model 3 in miniature).
    p.traffic.mean_packet_calls = 8.0;
    p.traffic.mean_packets_per_call = 12.0;
    p.traffic.mean_packet_interarrival = 0.3;
    p.traffic.mean_reading_time = 4.0;
    return p;
}

sim::SimulationConfig simulator_config(const core::Parameters& p) {
    sim::SimulationConfig config;
    config.cell = p;
    config.seed = 20010401;
    config.warmup_time = 3000.0;
    config.batch_count = 20;
    config.batch_duration = 3000.0;
    config.tcp_enabled = false;  // matches the chain's eta = 1 setting
    return config;
}

TEST(ModelVsSimulator, OpenLoopMeasuresAgreeWithinConfidenceBands) {
    core::Parameters p = joint_parameters();
    p.flow_control_threshold = 1.0;  // no flow control on either side

    core::GprsModel model(p);
    const core::Measures analytic = model.measures();

    const sim::SimulationResults simulated =
        sim::NetworkSimulator(simulator_config(p)).run();

    // The chain idealizes service as exponential-fluid while the simulator
    // transmits padded TDMA blocks, so we allow 3 half-widths plus a small
    // absolute slack rather than demanding strict CI membership.
    const auto close = [](double value, const sim::MetricEstimate& est, double slack) {
        return value >= est.mean - 3.0 * est.half_width - slack &&
               value <= est.mean + 3.0 * est.half_width + slack;
    };

    EXPECT_TRUE(close(analytic.carried_data_traffic, simulated.carried_data_traffic, 0.25))
        << "CDT: model " << analytic.carried_data_traffic << " vs sim ["
        << simulated.carried_data_traffic.lower() << ", "
        << simulated.carried_data_traffic.upper() << "]";

    EXPECT_TRUE(close(analytic.average_gprs_sessions, simulated.average_gprs_sessions, 0.2))
        << "AGS: model " << analytic.average_gprs_sessions << " vs sim ["
        << simulated.average_gprs_sessions.lower() << ", "
        << simulated.average_gprs_sessions.upper() << "]";

    EXPECT_TRUE(close(analytic.carried_voice_traffic, simulated.carried_voice_traffic, 0.15))
        << "CVT: model " << analytic.carried_voice_traffic << " vs sim ["
        << simulated.carried_voice_traffic.lower() << ", "
        << simulated.carried_voice_traffic.upper() << "]";

    EXPECT_TRUE(close(analytic.gsm_blocking, simulated.gsm_blocking, 0.02))
        << "GSM blocking: model " << analytic.gsm_blocking << " vs sim ["
        << simulated.gsm_blocking.lower() << ", " << simulated.gsm_blocking.upper() << "]";

    // Loss probabilities are the paper's "sensitive measure": compare within
    // a generous band (both are small but must have the same magnitude).
    EXPECT_TRUE(close(analytic.packet_loss_probability, simulated.packet_loss_probability,
                      0.03))
        << "PLP: model " << analytic.packet_loss_probability << " vs sim ["
        << simulated.packet_loss_probability.lower() << ", "
        << simulated.packet_loss_probability.upper() << "]";
}

TEST(ModelVsSimulator, ThroughputPerUserAgrees) {
    core::Parameters p = joint_parameters();
    p.flow_control_threshold = 1.0;

    core::GprsModel model(p);
    const core::Measures analytic = model.measures();
    const sim::SimulationResults simulated =
        sim::NetworkSimulator(simulator_config(p)).run();

    // ATU within 20% relative (TDMA padding costs the simulator ~5-10%).
    EXPECT_NEAR(simulated.throughput_per_user_kbps.mean, analytic.throughput_per_user_kbps,
                0.2 * analytic.throughput_per_user_kbps +
                    3.0 * simulated.throughput_per_user_kbps.half_width)
        << "model " << analytic.throughput_per_user_kbps << " sim "
        << simulated.throughput_per_user_kbps.mean;
}

}  // namespace
}  // namespace gprsim
