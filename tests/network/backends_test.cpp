// The network backends through the unified eval API: registration,
// bitwise thread-count invariance of evaluate_grids for both network-fp
// and network-des, provenance fields, and typed failures for bad inner
// backends.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "eval/backends.hpp"
#include "eval/registry.hpp"

namespace gprsim::eval {
namespace {

Evaluator& backend(const char* name) {
    auto found = BackendRegistry::global().find(name);
    EXPECT_TRUE(found.ok()) << name;
    return *found.value();
}

/// Tiny 2x2 network scenario (both backends finish in well under a second).
ScenarioQuery tiny_network_query() {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.parameters.total_channels = 6;
    query.parameters.buffer_capacity = 10;
    query.parameters.max_gprs_sessions = 6;
    query.parameters.gprs_fraction = 0.1;
    query.call_arrival_rate = 0.5;
    query.solver.tolerance = 1e-10;
    query.simulation.replications = 2;
    query.simulation.warmup_time = 50.0;
    query.simulation.batch_count = 3;
    query.simulation.batch_duration = 100.0;
    query.network.cells_x = 2;
    query.network.cells_y = 2;
    return query;
}

std::vector<ScenarioQuery> network_variants() {
    std::vector<ScenarioQuery> queries(2, tiny_network_query());
    queries[1].parameters.gprs_fraction = 0.2;
    queries[1].network.speed_kmh = 30.0;
    return queries;
}

void expect_bitwise_equal(const PointEvaluation& a, const PointEvaluation& b) {
    EXPECT_EQ(std::memcmp(&a.measures, &b.measures, sizeof(core::Measures)), 0);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(std::memcmp(&a.residual, &b.residual, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.rau_rate, &b.rau_rate, sizeof(double)), 0);
    ASSERT_EQ(a.cell_measures.size(), b.cell_measures.size());
    for (std::size_t c = 0; c < a.cell_measures.size(); ++c) {
        EXPECT_EQ(std::memcmp(&a.cell_measures[c], &b.cell_measures[c],
                              sizeof(core::Measures)),
                  0);
    }
    ASSERT_EQ(a.cell_residuals.size(), b.cell_residuals.size());
    for (std::size_t c = 0; c < a.cell_residuals.size(); ++c) {
        EXPECT_EQ(std::memcmp(&a.cell_residuals[c], &b.cell_residuals[c], sizeof(double)),
                  0);
    }
    if (a.has_confidence || b.has_confidence) {
        EXPECT_EQ(a.has_confidence, b.has_confidence);
        EXPECT_EQ(std::memcmp(&a.sim.carried_data_traffic.mean,
                              &b.sim.carried_data_traffic.mean, sizeof(double)),
                  0);
    }
}

TEST(NetworkBackends, RegisteredWithDescriptions) {
    for (const char* name : {"network-fp", "network-des"}) {
        auto found = BackendRegistry::global().find(name);
        ASSERT_TRUE(found.ok()) << name;
        EXPECT_EQ(found.value()->name(), name);
        EXPECT_FALSE(found.value()->description().empty()) << name;
    }
}

TEST(NetworkBackends, SinglePointCarriesNetworkProvenance) {
    auto fp = backend("network-fp").evaluate(tiny_network_query());
    ASSERT_TRUE(fp.ok()) << fp.error().to_string();
    EXPECT_EQ(fp.value().backend, "network-fp");
    EXPECT_EQ(fp.value().cell_measures.size(), 4u);
    EXPECT_EQ(fp.value().cell_residuals.size(), 4u);
    EXPECT_GE(fp.value().iterations, 1);
    EXPECT_EQ(fp.value().solver_method, "ctmc");  // the delegated inner solve

    auto des = backend("network-des").evaluate(tiny_network_query());
    ASSERT_TRUE(des.ok()) << des.error().to_string();
    EXPECT_EQ(des.value().cell_measures.size(), 4u);
    EXPECT_TRUE(des.value().has_confidence);
}

TEST(NetworkBackends, GridsAreBitwiseThreadCountInvariant) {
    const std::vector<double> rates{0.4, 0.6};
    const std::vector<ScenarioQuery> queries = network_variants();
    common::ThreadPool pool(4);
    for (const char* name : {"network-fp", "network-des"}) {
        auto serial = backend(name).evaluate_grids(queries, rates);
        GridOptions wide;
        wide.num_threads = 4;
        wide.pool = &pool;
        auto parallel = backend(name).evaluate_grids(queries, rates, wide);
        ASSERT_EQ(serial.size(), queries.size()) << name;
        ASSERT_EQ(parallel.size(), queries.size()) << name;
        for (std::size_t q = 0; q < queries.size(); ++q) {
            ASSERT_TRUE(serial[q].ok()) << name << ": " << serial[q].error().to_string();
            ASSERT_TRUE(parallel[q].ok()) << name;
            ASSERT_EQ(serial[q].value().size(), rates.size()) << name;
            for (std::size_t i = 0; i < rates.size(); ++i) {
                expect_bitwise_equal(serial[q].value()[i], parallel[q].value()[i]);
            }
        }
    }
}

TEST(NetworkBackends, UnknownInnerBackendFailsTyped) {
    ScenarioQuery query = tiny_network_query();
    query.network.inner_backend = "no-such-backend";
    auto point = backend("network-fp").evaluate(query);
    ASSERT_FALSE(point.ok());
    EXPECT_EQ(point.error().code, common::EvalErrorCode::unknown_backend);
    // A network backend as the inner solve is rejected up front (it would
    // recurse), as part of query validation.
    query.network.inner_backend = "network-fp";
    auto recursive = backend("network-fp").evaluate(query);
    ASSERT_FALSE(recursive.ok());
    EXPECT_EQ(recursive.error().code, common::EvalErrorCode::invalid_query);
}

}  // namespace
}  // namespace gprsim::eval
