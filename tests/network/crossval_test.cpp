// Cross-validation of the two network backends: the analytic outer fixed
// point (network-fp) against the multi-cell simulator (network-des) on a
// 3-cell ring.
//
// Scenario design: the single-cell model idealizes the TDMA data plane, so
// model-vs-simulation gaps are smallest where the data plane is saturated;
// and the analytic coupling assumes the incoming handover flows are
// independent Poisson streams, which small rings violate exactly when
// voice blocking (and thus handover-failure correlation) is high. The
// overlap case therefore drives the data plane deep into saturation
// (PLP ~ 0.8) while keeping voice light (blocking < 1%) — there both
// routes agree within ~2% and the 3% band is meaningful, not slack.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/backends.hpp"
#include "eval/registry.hpp"

namespace gprsim::eval {
namespace {

/// Saturated data plane, light voice plane (see the header comment).
ScenarioQuery overlap_query() {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.parameters.total_channels = 6;
    query.parameters.reserved_pdch = 1;
    query.parameters.buffer_capacity = 15;
    query.parameters.max_gprs_sessions = 8;
    query.parameters.gprs_fraction = 0.926;
    query.parameters.mean_gsm_call_duration = 60.0;
    query.parameters.mean_gsm_dwell_time = 60.0;
    query.parameters.mean_gprs_dwell_time = 60.0;
    query.parameters.traffic.mean_packet_calls = 8.0;
    query.parameters.traffic.mean_packets_per_call = 50.0;
    query.parameters.traffic.mean_packet_interarrival = 0.02;
    query.parameters.traffic.mean_reading_time = 4.0;
    query.parameters.flow_control_threshold = 1.0;  // open-loop sources
    query.call_arrival_rate = 0.27;
    query.solver.tolerance = 1e-10;
    query.simulation.tcp = false;
    query.simulation.warmup_time = 2000.0;
    query.simulation.batch_count = 12;
    query.simulation.batch_duration = 2000.0;
    query.simulation.replications = 3;
    query.simulation.seed = 20010401;
    query.network.cells_x = 3;
    query.network.cells_y = 1;
    return query;
}

double relative_gap(double model, double sim) {
    return std::fabs(model - sim) / std::max(std::fabs(model), 1e-12);
}

TEST(NetworkCrossValidation, FixedPointMatchesSimulatorOnThreeCellRing) {
    const ScenarioQuery query = overlap_query();
    auto fp = BackendRegistry::global().find("network-fp").value()->evaluate(query);
    auto des = BackendRegistry::global().find("network-des").value()->evaluate(query);
    ASSERT_TRUE(fp.ok()) << fp.error().to_string();
    ASSERT_TRUE(des.ok()) << des.error().to_string();

    const core::Measures& model = fp.value().measures;
    const core::Measures& sim = des.value().measures;
    EXPECT_LE(relative_gap(model.carried_data_traffic, sim.carried_data_traffic), 0.03)
        << "CDT " << model.carried_data_traffic << " vs " << sim.carried_data_traffic;
    EXPECT_LE(relative_gap(model.throughput_per_user_kbps, sim.throughput_per_user_kbps),
              0.03)
        << "ATU " << model.throughput_per_user_kbps << " vs "
        << sim.throughput_per_user_kbps;

    // The comparison only means something if the scenario sits where it
    // was designed to: saturated data, light voice.
    EXPECT_GT(model.packet_loss_probability, 0.5);
    EXPECT_LT(model.gsm_blocking, 0.05);

    // Both backends report the full 3-cell decomposition.
    EXPECT_EQ(fp.value().cell_measures.size(), 3u);
    EXPECT_EQ(des.value().cell_measures.size(), 3u);
    for (const core::Measures& cell : des.value().cell_measures) {
        EXPECT_GT(cell.carried_data_traffic, 0.0);
    }
}

}  // namespace
}  // namespace gprsim::eval
