// CellLattice topology: neighborhood shapes, toroidal wrap (including the
// wrap-duplicate edges of tiny lattices), the frequency-reuse channel
// split, routing-area tiling, per-cell overrides, and spec validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "network/lattice.hpp"

namespace gprsim::network {
namespace {

LatticeSpec tiny_spec() {
    LatticeSpec spec;
    spec.width = 2;
    spec.height = 2;
    spec.cell = core::Parameters::base();
    return spec;
}

TEST(NetworkLattice, TopologyStringsRoundTrip) {
    for (Topology t :
         {Topology::grid4, Topology::grid8, Topology::hex, Topology::clique}) {
        EXPECT_EQ(topology_from_string(to_string(t)), t);
    }
    EXPECT_THROW(topology_from_string("triangular"), std::invalid_argument);
}

TEST(NetworkLattice, WrappedGridKeepsWrapDuplicateEdges) {
    // On a wrapped 2x2 grid4 lattice the east and west neighbor of a cell
    // are the SAME cell; both directed edges must survive so edge weights
    // always sum to the full dwell rate.
    const CellLattice lattice = CellLattice::build(tiny_spec());
    ASSERT_EQ(lattice.size(), 4);
    for (int c = 0; c < lattice.size(); ++c) {
        ASSERT_EQ(lattice.edges(c).size(), 4u) << "cell " << c;
    }
    // Cell 0 = (0,0): E and W both reach cell 1, S and N both reach cell 2,
    // in the fixed E, W, S, N scan order.
    const auto& edges = lattice.edges(0);
    EXPECT_EQ(edges[0].to, 1);
    EXPECT_DOUBLE_EQ(edges[0].east, 1.0);
    EXPECT_EQ(edges[1].to, 1);
    EXPECT_DOUBLE_EQ(edges[1].east, -1.0);
    EXPECT_EQ(edges[2].to, 2);
    EXPECT_EQ(edges[3].to, 2);
    EXPECT_TRUE(lattice.homogeneous());
}

TEST(NetworkLattice, NeighborhoodSizesPerTopology) {
    LatticeSpec spec = tiny_spec();
    spec.width = 3;
    spec.height = 3;
    spec.topology = Topology::grid8;
    EXPECT_EQ(CellLattice::build(spec).edges(4).size(), 8u);
    spec.topology = Topology::hex;
    EXPECT_EQ(CellLattice::build(spec).edges(4).size(), 6u);
    spec.topology = Topology::clique;
    const CellLattice clique = CellLattice::build(spec);
    for (int c = 0; c < clique.size(); ++c) {
        EXPECT_EQ(clique.edges(c).size(), 8u);
    }
}

TEST(NetworkLattice, OpenBoundaryDropsOutwardEdges) {
    LatticeSpec spec = tiny_spec();
    spec.width = 3;
    spec.height = 1;
    spec.wrap = false;
    const CellLattice lattice = CellLattice::build(spec);
    // Middle cell keeps only its E/W neighbors (no N/S row to reach);
    // corner cells keep one.
    EXPECT_EQ(lattice.edges(0).size(), 1u);
    EXPECT_EQ(lattice.edges(1).size(), 2u);
    EXPECT_EQ(lattice.edges(2).size(), 1u);
    EXPECT_FALSE(lattice.homogeneous());
}

TEST(NetworkLattice, SingleCellGetsSelfLoop) {
    // A 1x1 open lattice has no neighbors; the fallback self-loop makes it
    // the paper's self-balanced single cell.
    LatticeSpec spec = tiny_spec();
    spec.width = 1;
    spec.height = 1;
    spec.wrap = false;
    const CellLattice open = CellLattice::build(spec);
    ASSERT_EQ(open.edges(0).size(), 1u);
    EXPECT_EQ(open.edges(0)[0].to, 0);
    EXPECT_DOUBLE_EQ(open.edges(0)[0].east, 0.0);
    // With wrap every grid4 offset lands back on the cell itself.
    spec.wrap = true;
    const CellLattice wrapped = CellLattice::build(spec);
    ASSERT_EQ(wrapped.edges(0).size(), 4u);
    for (const DirectedEdge& edge : wrapped.edges(0)) {
        EXPECT_EQ(edge.to, 0);
    }
}

TEST(NetworkLattice, ReuseFactorSplitsSpectrumPool) {
    LatticeSpec spec = tiny_spec();
    spec.cell.total_channels = 7;
    spec.reuse_factor = 2;
    const CellLattice lattice = CellLattice::build(spec);
    // Column parity colors the 2x2 lattice; the odd channel goes to
    // group 0, so the split is genuinely heterogeneous.
    EXPECT_EQ(lattice.reuse_group(0), 0);
    EXPECT_EQ(lattice.reuse_group(1), 1);
    EXPECT_EQ(lattice.cell_parameters(0).total_channels, 4);
    EXPECT_EQ(lattice.cell_parameters(1).total_channels, 3);
    EXPECT_EQ(lattice.cell_parameters(2).total_channels, 4);
    EXPECT_EQ(lattice.cell_parameters(3).total_channels, 3);
    EXPECT_FALSE(lattice.homogeneous());
    // reuse_factor 1 leaves every cell with the full pool.
    spec.reuse_factor = 1;
    EXPECT_EQ(CellLattice::build(spec).cell_parameters(3).total_channels, 7);
}

TEST(NetworkLattice, RoutingAreasTileTheLattice) {
    LatticeSpec spec = tiny_spec();
    spec.width = 4;
    spec.height = 2;
    spec.ra_block = 2;
    const CellLattice lattice = CellLattice::build(spec);
    // 2x2 blocks: cells 0,1,4,5 form RA 0; cells 2,3,6,7 form RA 1.
    EXPECT_EQ(lattice.routing_area(0), lattice.routing_area(1));
    EXPECT_EQ(lattice.routing_area(0), lattice.routing_area(4));
    EXPECT_NE(lattice.routing_area(1), lattice.routing_area(2));
    EXPECT_TRUE(lattice.crosses_routing_area(1, 2));
    EXPECT_FALSE(lattice.crosses_routing_area(0, 5));
    // ra_block 0: the whole lattice is one RA.
    spec.ra_block = 0;
    const CellLattice one_area = CellLattice::build(spec);
    for (int c = 1; c < one_area.size(); ++c) {
        EXPECT_FALSE(one_area.crosses_routing_area(0, c));
    }
}

TEST(NetworkLattice, OverridesReplaceCellParameters) {
    LatticeSpec spec = tiny_spec();
    core::Parameters replacement = spec.cell;
    replacement.buffer_capacity = 7;
    spec.overrides.emplace_back(2, replacement);
    const CellLattice lattice = CellLattice::build(spec);
    EXPECT_EQ(lattice.cell_parameters(2).buffer_capacity, 7);
    EXPECT_EQ(lattice.cell_parameters(0).buffer_capacity,
              core::Parameters::base().buffer_capacity);
    EXPECT_FALSE(lattice.homogeneous());
}

TEST(NetworkLattice, InvalidSpecsThrow) {
    LatticeSpec spec = tiny_spec();
    spec.width = 0;
    EXPECT_THROW(CellLattice::build(spec), std::invalid_argument);
    spec = tiny_spec();
    spec.reuse_factor = 0;
    EXPECT_THROW(CellLattice::build(spec), std::invalid_argument);
    spec = tiny_spec();
    spec.ra_block = -1;
    EXPECT_THROW(CellLattice::build(spec), std::invalid_argument);
    spec = tiny_spec();
    spec.overrides.emplace_back(9, spec.cell);
    EXPECT_THROW(CellLattice::build(spec), std::invalid_argument);
    // A reuse split that leaves a group with fewer channels than the
    // reserved PDCHs is rejected.
    spec = tiny_spec();
    spec.cell.total_channels = 6;
    spec.cell.reserved_pdch = 4;
    spec.reuse_factor = 2;
    EXPECT_THROW(CellLattice::build(spec), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::network
