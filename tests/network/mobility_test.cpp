// MobilityModel: speed scaling of the dwell rates, eastward drift
// asymmetry, routing-area-update masking, and parameter validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "network/mobility.hpp"

namespace gprsim::network {
namespace {

LatticeSpec ring_spec(int cells, bool wrap = false) {
    LatticeSpec spec;
    spec.width = cells;
    spec.height = 1;
    spec.wrap = wrap;
    spec.cell = core::Parameters::base();
    return spec;
}

TEST(NetworkMobility, RowSumsEqualScaledDwellRate) {
    const CellLattice lattice = CellLattice::build([] {
        LatticeSpec spec;
        spec.width = 2;
        spec.height = 2;
        spec.cell = core::Parameters::base();
        return spec;
    }());
    MobilityModel mobility;
    mobility.speed_kmh = 6.0;
    mobility.reference_speed_kmh = 3.0;
    const MobilityMatrices matrices = build_mobility(lattice, mobility);
    const core::Parameters& p = lattice.cell_parameters(0);
    for (int i = 0; i < lattice.size(); ++i) {
        double gsm_row = 0.0;
        double gprs_row = 0.0;
        for (int j = 0; j < lattice.size(); ++j) {
            gsm_row += matrices.gsm[i][j];
            gprs_row += matrices.gprs[i][j];
        }
        // Doubling the speed doubles the per-user boundary-crossing rate.
        EXPECT_NEAR(gsm_row, 2.0 * p.gsm_handover_rate(), 1e-12);
        EXPECT_NEAR(gprs_row, 2.0 * p.gprs_handover_rate(), 1e-12);
    }
}

TEST(NetworkMobility, DriftBiasesEastwardFlow) {
    // Open 3-cell row: the middle cell has exactly one east and one west
    // neighbor, so the edge-weight ratio is (1 + drift) / (1 - drift).
    const CellLattice lattice = CellLattice::build(ring_spec(3));
    MobilityModel mobility;
    mobility.drift = 0.5;
    const MobilityMatrices matrices = build_mobility(lattice, mobility);
    EXPECT_NEAR(matrices.gsm[1][2] / matrices.gsm[1][0], 1.5 / 0.5, 1e-12);
    EXPECT_NEAR(matrices.gprs[1][2] / matrices.gprs[1][0], 1.5 / 0.5, 1e-12);
    // Isotropic mobility splits the outflow evenly.
    mobility.drift = 0.0;
    const MobilityMatrices even = build_mobility(lattice, mobility);
    EXPECT_DOUBLE_EQ(even.gsm[1][0], even.gsm[1][2]);
}

TEST(NetworkMobility, RauMatricesMaskRoutingAreaCrossings) {
    // One routing area: no handover ever fires an update.
    LatticeSpec spec = ring_spec(4, /*wrap=*/true);
    const MobilityModel mobility;
    const MobilityMatrices one_area =
        build_mobility(CellLattice::build(spec), mobility);
    for (const auto& row : one_area.rau_gsm) {
        for (double rate : row) {
            EXPECT_EQ(rate, 0.0);
        }
    }
    // Per-cell routing areas: every inter-cell handover crosses, so the
    // masked matrices equal the handover matrices off the diagonal.
    spec.ra_block = 1;
    const CellLattice lattice = CellLattice::build(spec);
    const MobilityMatrices per_cell = build_mobility(lattice, mobility);
    for (int i = 0; i < lattice.size(); ++i) {
        for (int j = 0; j < lattice.size(); ++j) {
            if (i == j) {
                EXPECT_EQ(per_cell.rau_gsm[i][j], 0.0);
            } else {
                EXPECT_DOUBLE_EQ(per_cell.rau_gsm[i][j], per_cell.gsm[i][j]);
                EXPECT_DOUBLE_EQ(per_cell.rau_gprs[i][j], per_cell.gprs[i][j]);
            }
        }
    }
}

TEST(NetworkMobility, RoutingAreaUpdateRateSumsPopulationFlow) {
    LatticeSpec spec = ring_spec(4, /*wrap=*/true);
    spec.ra_block = 1;
    const CellLattice lattice = CellLattice::build(spec);
    const MobilityMatrices matrices = build_mobility(lattice, MobilityModel{});
    const std::vector<double> voice{4.0, 3.0, 2.0, 1.0};
    const std::vector<double> sessions{1.0, 1.5, 2.0, 2.5};
    double expected = 0.0;
    for (int i = 0; i < lattice.size(); ++i) {
        for (int j = 0; j < lattice.size(); ++j) {
            expected += matrices.rau_gsm[i][j] * voice[i] +
                        matrices.rau_gprs[i][j] * sessions[i];
        }
    }
    EXPECT_DOUBLE_EQ(routing_area_update_rate(matrices, voice, sessions), expected);
    EXPECT_GT(expected, 0.0);
}

TEST(NetworkMobility, ValidateRejectsBadParameters) {
    MobilityModel mobility;
    mobility.speed_kmh = 0.0;
    EXPECT_THROW(mobility.validate(), std::invalid_argument);
    mobility = MobilityModel{};
    mobility.reference_speed_kmh = -3.0;
    EXPECT_THROW(mobility.validate(), std::invalid_argument);
    mobility = MobilityModel{};
    mobility.drift = 1.0;
    EXPECT_THROW(mobility.validate(), std::invalid_argument);
    mobility = MobilityModel{};
    mobility.drift = -0.1;
    EXPECT_THROW(mobility.validate(), std::invalid_argument);
    MobilityModel{}.validate();  // defaults are fine
}

}  // namespace
}  // namespace gprsim::network
