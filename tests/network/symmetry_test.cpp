// The network symmetry property: on a homogeneous wrapped lattice the
// doubly-stochastic mobility matrices make the paper's self-balanced
// single cell the exact fixed point of the network coupling, so every
// cell of network-fp must reproduce the single-cell ctmc solution. Also
// pins the phase API (solve_cell / advance / finish) to the serial solve()
// reference bitwise, and the typed non-convergence error.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "eval/backends.hpp"
#include "eval/registry.hpp"
#include "network/coupling.hpp"

namespace gprsim::network {
namespace {

using eval::BackendRegistry;
using eval::ScenarioQuery;

/// Tiny cell: a few thousand CTMC states, milliseconds per solve.
ScenarioQuery tiny_query() {
    ScenarioQuery query;
    query.parameters = core::Parameters::base();
    query.parameters.total_channels = 6;
    query.parameters.buffer_capacity = 10;
    query.parameters.max_gprs_sessions = 6;
    query.parameters.gprs_fraction = 0.1;
    query.call_arrival_rate = 0.5;
    query.solver.tolerance = 1e-12;
    return query;
}

double relative_gap(double a, double b) {
    const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
    return std::fabs(a - b) / scale;
}

TEST(NetworkSymmetry, HomogeneousLatticeReproducesSingleCell) {
    ScenarioQuery query = tiny_query();
    query.network.cells_x = 2;
    query.network.cells_y = 2;

    auto single = BackendRegistry::global().find("ctmc").value()->evaluate(tiny_query());
    auto net = BackendRegistry::global().find("network-fp").value()->evaluate(query);
    ASSERT_TRUE(single.ok()) << single.error().to_string();
    ASSERT_TRUE(net.ok()) << net.error().to_string();

    const core::Measures& ref = single.value().measures;
    ASSERT_EQ(net.value().cell_measures.size(), 4u);
    for (const core::Measures& cell : net.value().cell_measures) {
        EXPECT_LE(relative_gap(cell.carried_data_traffic, ref.carried_data_traffic), 1e-10);
        EXPECT_LE(relative_gap(cell.packet_loss_probability, ref.packet_loss_probability),
                  1e-10);
        EXPECT_LE(relative_gap(cell.queueing_delay, ref.queueing_delay), 1e-10);
        EXPECT_LE(relative_gap(cell.throughput_per_user_kbps, ref.throughput_per_user_kbps),
                  1e-10);
        EXPECT_LE(relative_gap(cell.carried_voice_traffic, ref.carried_voice_traffic), 1e-10);
        EXPECT_LE(relative_gap(cell.average_gprs_sessions, ref.average_gprs_sessions), 1e-10);
    }
    // The aggregate of identical cells is the cell itself.
    EXPECT_LE(relative_gap(net.value().measures.carried_data_traffic,
                           ref.carried_data_traffic),
              1e-10);
    // The self-balanced initial inflow is already the fixed point.
    EXPECT_EQ(net.value().iterations, 1);
    EXPECT_LT(net.value().residual, 1e-10);
    ASSERT_EQ(net.value().cell_residuals.size(), 4u);
}

TEST(NetworkSymmetry, PhaseApiMatchesSerialSolveBitwise) {
    LatticeSpec spec;
    spec.width = 2;
    spec.height = 2;
    spec.cell = tiny_query().resolved_parameters();
    // Reuse heterogeneity forces a real outer iteration, exercising more
    // than the converge-immediately path. The pool must be odd: 7 channels
    // split 4/3 across the two reuse groups (6 would split evenly and keep
    // the lattice homogeneous).
    spec.cell.total_channels = 7;
    spec.reuse_factor = 2;
    const MobilityModel mobility;
    const ScenarioQuery query = tiny_query();
    eval::Evaluator& inner = *BackendRegistry::global().find("ctmc").value();
    NetworkOptions options;
    options.tolerance = 1e-10;

    NetworkFixedPoint serial(CellLattice::build(spec), mobility, query, inner, options);
    auto reference = serial.solve();
    ASSERT_TRUE(reference.ok()) << reference.error().to_string();
    EXPECT_GT(reference.value().outer_iterations, 1);

    NetworkFixedPoint phased(CellLattice::build(spec), mobility, query, inner, options);
    while (!phased.done()) {
        // Reverse cell order: solve_cell calls within one iteration must
        // commute (they read frozen inflows, write disjoint slots).
        for (int cell = phased.cell_count() - 1; cell >= 0; --cell) {
            phased.solve_cell(cell);
        }
        phased.advance();
    }
    auto result = phased.finish();
    ASSERT_TRUE(result.ok()) << result.error().to_string();

    const NetworkSolution& a = reference.value();
    const NetworkSolution& b = result.value();
    EXPECT_EQ(a.outer_iterations, b.outer_iterations);
    EXPECT_EQ(a.inner_iterations, b.inner_iterations);
    EXPECT_EQ(std::memcmp(&a.residual, &b.residual, sizeof(double)), 0);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t c = 0; c < a.cells.size(); ++c) {
        EXPECT_EQ(std::memcmp(&a.cells[c], &b.cells[c], sizeof(core::Measures)), 0);
    }
    EXPECT_EQ(std::memcmp(&a.aggregate, &b.aggregate, sizeof(core::Measures)), 0);
}

TEST(NetworkSymmetry, OuterIterationCapYieldsTypedNonConvergence) {
    ScenarioQuery query = tiny_query();
    query.parameters.total_channels = 7;  // odd pool: the reuse split is uneven
    query.network.cells_x = 2;
    query.network.cells_y = 2;
    query.network.reuse_factor = 2;  // heterogeneous: one iteration cannot do
    query.network.outer_tolerance = 1e-15;
    query.network.outer_max_iterations = 1;
    auto point = BackendRegistry::global().find("network-fp").value()->evaluate(query);
    ASSERT_FALSE(point.ok());
    EXPECT_EQ(point.error().code, common::EvalErrorCode::non_convergence);
}

}  // namespace
}  // namespace gprsim::network
