#include "queueing/erlang.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gprsim::queueing {
namespace {

TEST(ErlangB, TextbookValues) {
    // Classic Erlang-B table entries.
    EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
    EXPECT_NEAR(erlang_b(2.0, 2), 0.4, 1e-12);
    // A = 10 Erlang, c = 10 servers: B ~ 0.21458.
    EXPECT_NEAR(erlang_b(10.0, 10), 0.21458, 1e-4);
    // A = 5, c = 10: B ~ 0.018385.
    EXPECT_NEAR(erlang_b(5.0, 10), 0.018385, 1e-5);
}

TEST(ErlangB, ZeroServersAlwaysBlocks) { EXPECT_DOUBLE_EQ(erlang_b(3.0, 0), 1.0); }

TEST(ErlangB, ZeroLoadNeverBlocks) { EXPECT_DOUBLE_EQ(erlang_b(0.0, 4), 0.0); }

TEST(ErlangB, MonotoneInLoadAndServers) {
    EXPECT_LT(erlang_b(4.0, 10), erlang_b(6.0, 10));
    EXPECT_GT(erlang_b(6.0, 5), erlang_b(6.0, 10));
}

TEST(ErlangB, HandlesHugeLoadsWithoutOverflow) {
    const double b = erlang_b(1e6, 100);
    EXPECT_GT(b, 0.99);
    EXPECT_LE(b, 1.0);
}

TEST(ErlangC, KnownValueAndLimits) {
    // A = 2, c = 3: C ~ 0.44444... Actually C(3,2) = 4/9.
    EXPECT_NEAR(erlang_c(2.0, 3), 4.0 / 9.0, 1e-10);
    // Overload: waiting with certainty.
    EXPECT_DOUBLE_EQ(erlang_c(5.0, 3), 1.0);
    EXPECT_DOUBLE_EQ(erlang_c(1.0, 0), 1.0);
}

TEST(ErlangC, AtLeastErlangB) {
    for (double a : {0.5, 2.0, 7.5}) {
        for (int c : {2, 5, 10}) {
            if (a < c) {
                EXPECT_GE(erlang_c(a, c), erlang_b(a, c));
            }
        }
    }
}

TEST(MmccDistribution, MatchesTruncatedPoissonShape) {
    const double rho = 3.0;
    const std::vector<double> pi = mmcc_distribution(rho, 5);
    ASSERT_EQ(pi.size(), 6u);
    for (std::size_t n = 1; n < pi.size(); ++n) {
        EXPECT_NEAR(pi[n] / pi[n - 1], rho / static_cast<double>(n), 1e-12);
    }
    double sum = 0.0;
    for (double v : pi) {
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MmccDistribution, LastStateIsErlangB) {
    const double rho = 4.2;
    const int c = 7;
    const std::vector<double> pi = mmcc_distribution(rho, c);
    EXPECT_NEAR(pi[static_cast<std::size_t>(c)], erlang_b(rho, c), 1e-12);
}

TEST(MmccCarriedLoad, EqualsMeanOfDistribution) {
    const double rho = 2.5;
    const int c = 6;
    const std::vector<double> pi = mmcc_distribution(rho, c);
    double mean = 0.0;
    for (int n = 0; n <= c; ++n) {
        mean += static_cast<double>(n) * pi[static_cast<std::size_t>(n)];
    }
    EXPECT_NEAR(mmcc_carried_load(rho, c), mean, 1e-12);
}

TEST(ErlangB, RejectsInvalidArguments) {
    EXPECT_THROW(erlang_b(-1.0, 3), std::invalid_argument);
    EXPECT_THROW(erlang_b(1.0, -3), std::invalid_argument);
    EXPECT_THROW(mmcc_distribution(-0.1, 3), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::queueing
