#include "queueing/handover.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "queueing/erlang.hpp"

namespace gprsim::queueing {
namespace {

TEST(HandoverBalance, FixedPointSatisfiesBalanceEquation) {
    const double lambda = 0.5;
    const double mu = 1.0 / 120.0;
    const double mu_h = 1.0 / 60.0;
    const int servers = 19;
    const HandoverBalance balance = balance_handover_flow(lambda, mu, mu_h, servers);
    ASSERT_TRUE(balance.converged);

    // lambda_h = mu_h * carried(rho) must hold at the fixed point.
    const double carried = mmcc_carried_load(balance.offered_load, servers);
    EXPECT_NEAR(balance.handover_arrival_rate, mu_h * carried, 1e-9);
    // rho must be consistent with the flows.
    EXPECT_NEAR(balance.offered_load,
                (lambda + balance.handover_arrival_rate) / (mu + mu_h), 1e-12);
}

TEST(HandoverBalance, NoMobilityMeansNoHandoverFlow) {
    const HandoverBalance balance = balance_handover_flow(0.3, 0.01, 0.0, 10);
    ASSERT_TRUE(balance.converged);
    EXPECT_DOUBLE_EQ(balance.handover_arrival_rate, 0.0);
    EXPECT_NEAR(balance.offered_load, 0.3 / 0.01, 1e-12);
}

TEST(HandoverBalance, LightLoadApproximation) {
    // With negligible blocking, rho * mu = lambda must (almost) hold:
    // the handover flow only redistributes users, it does not create them.
    const double lambda = 0.001;
    const double mu = 1.0 / 100.0;
    const double mu_h = 1.0 / 50.0;
    const HandoverBalance balance = balance_handover_flow(lambda, mu, mu_h, 50);
    ASSERT_TRUE(balance.converged);
    EXPECT_NEAR(balance.offered_load * mu, lambda, 1e-6);
}

TEST(HandoverBalance, FasterMobilityIncreasesHandoverFlow) {
    const HandoverBalance slow = balance_handover_flow(0.5, 1.0 / 120.0, 1.0 / 120.0, 19);
    const HandoverBalance fast = balance_handover_flow(0.5, 1.0 / 120.0, 1.0 / 30.0, 19);
    EXPECT_GT(fast.handover_arrival_rate, slow.handover_arrival_rate);
}

TEST(HandoverBalance, MatchesPaperMagnitude) {
    // Paper Section 5.3: with traffic model 1 at 1 call/s and 5% GPRS users,
    // the GPRS handover rate is "about 0.3 handover requests per second"
    // (dwell 120 s, session duration 2122.5 s, M = 50).
    const double lambda = 0.05;
    const double mu = 1.0 / 2122.5;
    const double mu_h = 1.0 / 120.0;
    const HandoverBalance balance = balance_handover_flow(lambda, mu, mu_h, 50);
    ASSERT_TRUE(balance.converged);
    EXPECT_NEAR(balance.handover_arrival_rate, 0.3, 0.1);
}

TEST(HandoverBalance, GeneralizedBalanceMatchesLegacyLoopBitwise) {
    // balance_handover_flow is now the symmetric special case of
    // assess_handover_flow (the pinned-inflow map the network fixed point
    // iterates). This regression re-implements the pre-generalization loop
    // inline and demands exact equality: the refactor must not have moved
    // a single bit.
    const struct {
        double lambda, mu, mu_h;
        int servers;
    } cases[] = {
        {0.5, 1.0 / 120.0, 1.0 / 60.0, 19},
        {0.05, 1.0 / 2122.5, 1.0 / 120.0, 50},
        {0.001, 1.0 / 100.0, 1.0 / 50.0, 50},
        {2.0, 1.0 / 60.0, 1.0 / 30.0, 5},
        {0.3, 0.01, 0.0, 10},
    };
    const double tolerance = 1e-13;
    const int max_iterations = 100000;
    for (const auto& c : cases) {
        double lambda_h = c.lambda;
        int iterations = 0;
        bool converged = false;
        for (int i = 1; i <= max_iterations; ++i) {
            const double rho = (c.lambda + lambda_h) / (c.mu + c.mu_h);
            const double next = c.mu_h * mmcc_carried_load(rho, c.servers);
            iterations = i;
            const double scale = std::max(1.0, std::fabs(lambda_h));
            if (std::fabs(next - lambda_h) <= tolerance * scale) {
                lambda_h = next;
                converged = true;
                break;
            }
            lambda_h = next;
        }
        const HandoverBalance balance =
            balance_handover_flow(c.lambda, c.mu, c.mu_h, c.servers);
        EXPECT_EQ(balance.handover_arrival_rate, lambda_h) << c.lambda;
        EXPECT_EQ(balance.offered_load, (c.lambda + lambda_h) / (c.mu + c.mu_h))
            << c.lambda;
        EXPECT_EQ(balance.iterations, iterations) << c.lambda;
        EXPECT_EQ(balance.converged, converged) << c.lambda;
    }
}

TEST(HandoverBalance, PinnedFlowAtTheBalancePointIsStationary) {
    // Pinning the balanced incoming rate must reproduce it as the outgoing
    // rate: the symmetric balance is a fixed point of the generalized map.
    const double lambda = 0.5;
    const double mu = 1.0 / 120.0;
    const double mu_h = 1.0 / 60.0;
    const int servers = 19;
    const HandoverBalance balance = balance_handover_flow(lambda, mu, mu_h, servers);
    ASSERT_TRUE(balance.converged);
    const HandoverFlow flow = assess_handover_flow(lambda, mu, mu_h, servers,
                                                   balance.handover_arrival_rate);
    EXPECT_NEAR(flow.outgoing_rate, balance.handover_arrival_rate, 1e-12);
    EXPECT_EQ(flow.offered_load, balance.offered_load);
    EXPECT_EQ(flow.outgoing_rate, mu_h * flow.carried_users);
    // More external inflow means more carried users and more outflow.
    const HandoverFlow boosted = assess_handover_flow(
        lambda, mu, mu_h, servers, 2.0 * balance.handover_arrival_rate + 0.1);
    EXPECT_GT(boosted.carried_users, flow.carried_users);
    EXPECT_GT(boosted.outgoing_rate, flow.outgoing_rate);
}

TEST(HandoverBalance, RejectsInvalidArguments) {
    EXPECT_THROW(balance_handover_flow(-0.1, 1.0, 1.0, 5), std::invalid_argument);
    EXPECT_THROW(balance_handover_flow(0.1, 0.0, 1.0, 5), std::invalid_argument);
    EXPECT_THROW(balance_handover_flow(0.1, 1.0, -1.0, 5), std::invalid_argument);
    EXPECT_THROW(balance_handover_flow(0.1, 1.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::queueing
