#include "queueing/handover.hpp"

#include <gtest/gtest.h>

#include "queueing/erlang.hpp"

namespace gprsim::queueing {
namespace {

TEST(HandoverBalance, FixedPointSatisfiesBalanceEquation) {
    const double lambda = 0.5;
    const double mu = 1.0 / 120.0;
    const double mu_h = 1.0 / 60.0;
    const int servers = 19;
    const HandoverBalance balance = balance_handover_flow(lambda, mu, mu_h, servers);
    ASSERT_TRUE(balance.converged);

    // lambda_h = mu_h * carried(rho) must hold at the fixed point.
    const double carried = mmcc_carried_load(balance.offered_load, servers);
    EXPECT_NEAR(balance.handover_arrival_rate, mu_h * carried, 1e-9);
    // rho must be consistent with the flows.
    EXPECT_NEAR(balance.offered_load,
                (lambda + balance.handover_arrival_rate) / (mu + mu_h), 1e-12);
}

TEST(HandoverBalance, NoMobilityMeansNoHandoverFlow) {
    const HandoverBalance balance = balance_handover_flow(0.3, 0.01, 0.0, 10);
    ASSERT_TRUE(balance.converged);
    EXPECT_DOUBLE_EQ(balance.handover_arrival_rate, 0.0);
    EXPECT_NEAR(balance.offered_load, 0.3 / 0.01, 1e-12);
}

TEST(HandoverBalance, LightLoadApproximation) {
    // With negligible blocking, rho * mu = lambda must (almost) hold:
    // the handover flow only redistributes users, it does not create them.
    const double lambda = 0.001;
    const double mu = 1.0 / 100.0;
    const double mu_h = 1.0 / 50.0;
    const HandoverBalance balance = balance_handover_flow(lambda, mu, mu_h, 50);
    ASSERT_TRUE(balance.converged);
    EXPECT_NEAR(balance.offered_load * mu, lambda, 1e-6);
}

TEST(HandoverBalance, FasterMobilityIncreasesHandoverFlow) {
    const HandoverBalance slow = balance_handover_flow(0.5, 1.0 / 120.0, 1.0 / 120.0, 19);
    const HandoverBalance fast = balance_handover_flow(0.5, 1.0 / 120.0, 1.0 / 30.0, 19);
    EXPECT_GT(fast.handover_arrival_rate, slow.handover_arrival_rate);
}

TEST(HandoverBalance, MatchesPaperMagnitude) {
    // Paper Section 5.3: with traffic model 1 at 1 call/s and 5% GPRS users,
    // the GPRS handover rate is "about 0.3 handover requests per second"
    // (dwell 120 s, session duration 2122.5 s, M = 50).
    const double lambda = 0.05;
    const double mu = 1.0 / 2122.5;
    const double mu_h = 1.0 / 120.0;
    const HandoverBalance balance = balance_handover_flow(lambda, mu, mu_h, 50);
    ASSERT_TRUE(balance.converged);
    EXPECT_NEAR(balance.handover_arrival_rate, 0.3, 0.1);
}

TEST(HandoverBalance, RejectsInvalidArguments) {
    EXPECT_THROW(balance_handover_flow(-0.1, 1.0, 1.0, 5), std::invalid_argument);
    EXPECT_THROW(balance_handover_flow(0.1, 0.0, 1.0, 5), std::invalid_argument);
    EXPECT_THROW(balance_handover_flow(0.1, 1.0, -1.0, 5), std::invalid_argument);
    EXPECT_THROW(balance_handover_flow(0.1, 1.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::queueing
