#include "queueing/mm1k.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gprsim::queueing {
namespace {

TEST(Mm1k, MatchesClosedFormGeometric) {
    const double lambda = 0.5;
    const double mu = 1.0;
    const int capacity = 10;
    const FiniteQueueMetrics metrics = mm1k(lambda, mu, capacity);

    // pi_k = (1 - rho) rho^k / (1 - rho^{K+1}).
    const double rho = lambda / mu;
    const double norm = (1.0 - std::pow(rho, capacity + 1)) / (1.0 - rho);
    for (int k = 0; k <= capacity; ++k) {
        EXPECT_NEAR(metrics.distribution[static_cast<std::size_t>(k)],
                    std::pow(rho, k) / norm, 1e-12);
    }
}

TEST(Mm1k, LossProbabilityIsLastState) {
    const FiniteQueueMetrics metrics = mm1k(2.0, 1.0, 5);
    EXPECT_DOUBLE_EQ(metrics.loss_probability, metrics.distribution[5]);
    EXPECT_GT(metrics.loss_probability, 0.3);  // overloaded queue loses a lot
}

TEST(Mm1k, LittleLawConsistency) {
    const FiniteQueueMetrics metrics = mm1k(0.7, 1.0, 8);
    EXPECT_NEAR(metrics.mean_delay * metrics.throughput, metrics.mean_queue_length, 1e-12);
}

TEST(Mm1k, CriticallyLoadedIsUniform) {
    // rho = 1: all states equally likely.
    const FiniteQueueMetrics metrics = mm1k(1.0, 1.0, 4);
    for (int k = 0; k <= 4; ++k) {
        EXPECT_NEAR(metrics.distribution[static_cast<std::size_t>(k)], 0.2, 1e-12);
    }
}

TEST(Mmck, ReducesToMm1kWithOneServer) {
    const FiniteQueueMetrics a = mm1k(0.6, 1.2, 6);
    const FiniteQueueMetrics b = mmck(0.6, 1.2, 1, 6);
    for (std::size_t k = 0; k < a.distribution.size(); ++k) {
        EXPECT_NEAR(a.distribution[k], b.distribution[k], 1e-14);
    }
}

TEST(Mmck, FullCapacityEqualsErlangLoss) {
    // M/M/c/c: loss = Erlang B(3, 4) = 0.20611...
    const FiniteQueueMetrics metrics = mmck(3.0, 1.0, 4, 4);
    EXPECT_NEAR(metrics.loss_probability, 0.20611, 1e-4);
}

TEST(Mm1k, RejectsInvalidArguments) {
    EXPECT_THROW(mm1k(-1.0, 1.0, 3), std::invalid_argument);
    EXPECT_THROW(mm1k(1.0, 0.0, 3), std::invalid_argument);
    EXPECT_THROW(mm1k(1.0, 1.0, 0), std::invalid_argument);
    EXPECT_THROW(mmck(1.0, 1.0, 3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::queueing
