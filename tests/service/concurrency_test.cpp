// Service concurrency contract:
//   1. N concurrent requests over the shared warm store return CSV bytes
//      IDENTICAL to a sequential one-shot campaign run of the same spec —
//      the store memoizes finished slices, it never lets one request's
//      warm-start state leak into another's output.
//   2. Store refcounts drain to zero once nothing is in flight.
//   3. A saturated service REJECTS with a typed `saturated` error; the
//      bounded queue never grows past its capacity.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/spec.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"

namespace gprsim::service {
namespace {

/// Mixed deterministic + stochastic backends on a tiny cell: the ctmc
/// warm-start schedule and the DES substream plan are exactly the parts
/// whose bytes would drift if the service mis-dispatched a slice.
const char* kIdentitySpec = R"({
  "name": "svc_identity",
  "methods": ["erlang", "ctmc", "des"],
  "traffic_model": 1,
  "reserved_pdch": [1, 2],
  "gprs_fraction": 0.1,
  "channels": 6,
  "buffer": 10,
  "max_gprs_sessions": 6,
  "rates": [0.3, 0.5],
  "solver": {"tolerance": 1e-9, "warm_start": true},
  "simulation": {
    "replications": 2,
    "seed": 9,
    "warmup": 100,
    "batch_count": 3,
    "batch_duration": 150,
    "tcp": false,
  },
})";

/// The one-shot reference: same spec through CampaignRunner + CSV sink.
std::string one_shot_csv(const std::string& spec_text) {
    const campaign::ScenarioSpec spec = campaign::parse_spec(spec_text);
    const campaign::CampaignResult result = campaign::run_campaign(spec, {});
    std::ostringstream csv;
    campaign::write_campaign_csv(result, csv);
    return csv.str();
}

/// Drains one stream; returns the concatenated csv payloads and requires
/// accepted-first, done-last framing.
std::string drain_csv(const RequestStreamPtr& stream) {
    std::string csv;
    bool accepted = false;
    bool done = false;
    while (auto frame = stream->pop()) {
        if (frame->type == "accepted") {
            accepted = true;
        } else if (frame->type == "csv") {
            csv += frame->payload;
        } else if (frame->type == "done") {
            done = true;
        } else {
            ADD_FAILURE() << "unexpected frame: " << frame->type << " / "
                          << frame->payload;
        }
    }
    EXPECT_TRUE(accepted);
    EXPECT_TRUE(done);
    return csv;
}

void wait_for_drained(const CampaignService& service) {
    for (int i = 0; i < 500 && service.store_active_refs() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(service.store_active_refs(), 0u);
}

TEST(Concurrency, ConcurrentRequestsMatchOneShotByteForByte) {
    const std::string expected = one_shot_csv(kIdentitySpec);
    ASSERT_FALSE(expected.empty());

    ServiceOptions options;
    options.workers = 3;
    options.queue_capacity = 16;
    CampaignService service(options);

    constexpr int kRequests = 6;
    std::vector<RequestStreamPtr> streams;
    for (int i = 0; i < kRequests; ++i) {
        auto stream = service.submit(static_cast<std::uint64_t>(i), kIdentitySpec);
        ASSERT_TRUE(stream.ok()) << stream.error().message;
        streams.push_back(stream.value());
    }
    // Drain concurrently so all three workers stay busy at once.
    std::vector<std::string> results(kRequests);
    std::vector<std::thread> readers;
    readers.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        readers.emplace_back(
            [&results, &streams, i] { results[i] = drain_csv(streams[i]); });
    }
    for (std::thread& reader : readers) {
        reader.join();
    }
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_EQ(results[i], expected) << "request " << i << " diverged";
    }

    // 3 methods x 2 variants = 6 unique slices; every other acquire must
    // have hit the store (published value or join-in-flight).
    const StatsSnapshot stats = service.stats();
    EXPECT_EQ(stats.requests_served, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(stats.store_misses, 6u);
    EXPECT_EQ(stats.store_hits, static_cast<std::uint64_t>(kRequests - 1) * 6u);
    EXPECT_GT(stats.store_hit_rate(), 0.8);
    EXPECT_GT(stats.points_evaluated, 0u);

    wait_for_drained(service);
}

TEST(Concurrency, WarmStoreHitsAcrossSequentialRequestsStayIdentical) {
    const std::string expected = one_shot_csv(kIdentitySpec);
    CampaignService service(ServiceOptions{});

    for (int i = 0; i < 3; ++i) {
        auto stream = service.submit(static_cast<std::uint64_t>(i), kIdentitySpec);
        ASSERT_TRUE(stream.ok());
        EXPECT_EQ(drain_csv(stream.value()), expected) << "request " << i;
    }
    // Requests 2 and 3 must have been served entirely from the store.
    const StatsSnapshot stats = service.stats();
    EXPECT_EQ(stats.store_misses, 6u);
    EXPECT_EQ(stats.store_hits, 12u);
    wait_for_drained(service);
}

TEST(Concurrency, SaturationRejectsInsteadOfQueueing) {
    ServiceOptions options;
    options.workers = 1;
    options.queue_capacity = 2;
    options.ring_frames = 1;  // un-popped frames park the single worker
    CampaignService service(options);

    auto running = service.submit(1, kIdentitySpec);
    ASSERT_TRUE(running.ok());
    // Wait until the worker has claimed it; the queue is then empty.
    for (int i = 0; i < 500 && service.queued() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(service.queued(), 0u);

    auto queued_a = service.submit(2, kIdentitySpec);
    auto queued_b = service.submit(3, kIdentitySpec);
    ASSERT_TRUE(queued_a.ok());
    ASSERT_TRUE(queued_b.ok());
    EXPECT_EQ(service.queued(), 2u);

    // Queue full: typed rejection, queue does NOT grow.
    auto rejected = service.submit(4, kIdentitySpec);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error().code, common::EvalErrorCode::saturated);
    EXPECT_NE(rejected.error().message.find("queue full"), std::string::npos);
    EXPECT_EQ(service.queued(), 2u);
    EXPECT_EQ(service.stats().requests_rejected, 1u);

    // Backpressure releases: drain everything, all admitted requests finish.
    const std::string expected = one_shot_csv(kIdentitySpec);
    EXPECT_EQ(drain_csv(running.value()), expected);
    EXPECT_EQ(drain_csv(queued_a.value()), expected);
    EXPECT_EQ(drain_csv(queued_b.value()), expected);
    EXPECT_EQ(service.stats().requests_served, 3u);
    wait_for_drained(service);
}

TEST(Concurrency, ShutdownFailsQueuedRequestsTyped) {
    ServiceOptions options;
    options.workers = 1;
    options.ring_frames = 1;
    CampaignService service(options);
    auto running = service.submit(1, kIdentitySpec);
    ASSERT_TRUE(running.ok());
    for (int i = 0; i < 500 && service.queued() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    auto queued = service.submit(2, kIdentitySpec);
    ASSERT_TRUE(queued.ok());
    // Pop the admission frame so the capacity-1 ring can take the terminal
    // error frame shutdown() pushes.
    auto accepted = queued.value()->pop();
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->type, "accepted");

    // Shutdown while one request runs and one is queued: the queued one is
    // failed typed, the running one still streams to completion (drained
    // here from another thread so the worker can finish).
    std::thread drainer([&running] { drain_csv(running.value()); });
    service.shutdown();
    drainer.join();

    std::vector<Frame> frames;
    while (auto frame = queued.value()->pop()) {
        frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].type, "error");
    EXPECT_EQ(decode_error_payload(frames[0].payload).code,
              common::EvalErrorCode::internal);
}

}  // namespace
}  // namespace gprsim::service
