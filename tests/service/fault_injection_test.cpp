// Service-level fault injection: every abuse path — malformed spec,
// unknown backend, oversized request, cancellation, client disconnect
// mid-stream, malformed protocol frames — must surface as a TYPED error
// (an EvalError from submit, or an "error" frame on the stream/connection)
// and never crash, hang, or wedge a worker. The suite runs under the
// ASan/UBSan CI lanes, so a leaked ring consumer or a use-after-free in
// the forwarder handoff fails loudly.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace gprsim::service {
namespace {

/// A cheap two-backend spec: 2 variants x 2 rates x {erlang, ctmc} on a
/// tiny cell — enough slices for cancellation boundaries, milliseconds of
/// work.
const char* kSmallSpec = R"({
  "name": "svc_small",
  "methods": ["erlang", "ctmc"],
  "traffic_model": 1,
  "reserved_pdch": [1, 2],
  "gprs_fraction": 0.1,
  "channels": 6,
  "buffer": 10,
  "max_gprs_sessions": 6,
  "rates": [0.3, 0.5]
})";

/// Drains a stream to completion and returns every frame.
std::vector<Frame> drain(const RequestStreamPtr& stream) {
    std::vector<Frame> frames;
    while (auto frame = stream->pop()) {
        frames.push_back(std::move(*frame));
    }
    return frames;
}

TEST(FaultInjection, MalformedSpecIsATypedRejection) {
    CampaignService service(ServiceOptions{});
    auto stream = service.submit(1, "{\"name\": \"broken\", \"metho");
    ASSERT_FALSE(stream.ok());
    EXPECT_EQ(stream.error().code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(stream.error().message.find("campaign spec"), std::string::npos);
    EXPECT_EQ(service.stats().requests_rejected, 1u);
}

TEST(FaultInjection, UnknownBackendIsATypedRejection) {
    CampaignService service(ServiceOptions{});
    auto stream = service.submit(
        1, R"({"name": "x", "methods": ["warp-drive"], "rates": [0.5]})");
    ASSERT_FALSE(stream.ok());
    EXPECT_EQ(stream.error().code, common::EvalErrorCode::unknown_backend);
}

TEST(FaultInjection, OversizedRequestIsATypedRejection) {
    ServiceOptions options;
    options.max_request_bytes = 64;
    CampaignService service(options);
    auto stream = service.submit(1, std::string(1024, ' '));
    ASSERT_FALSE(stream.ok());
    EXPECT_EQ(stream.error().code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(stream.error().message.find("exceeds the request cap"), std::string::npos);
}

TEST(FaultInjection, DegenerateTraceFailsTheRequestNotTheService) {
    CampaignService service(ServiceOptions{});
    // Well-formed spec whose trace does not exist: admission passes (the
    // trace is fitted during expansion), the REQUEST fails typed.
    const std::string spec = R"({
      "name": "bad_trace",
      "methods": ["erlang"],
      "traffic_model": "trace:/nonexistent/capture.trace",
      "channels": 6, "buffer": 10, "max_gprs_sessions": 6,
      "rates": [0.5]
    })";
    auto stream = service.submit(7, spec);
    ASSERT_TRUE(stream.ok()) << stream.error().message;
    const std::vector<Frame> frames = drain(stream.value());
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, "accepted");
    ASSERT_EQ(frames[1].type, "error");
    const common::EvalError error = decode_error_payload(frames[1].payload);
    EXPECT_EQ(error.code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(error.message.find("trace"), std::string::npos);

    // The service keeps serving.
    auto next = service.submit(8, kSmallSpec);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(drain(next.value()).back().type, "done");
}

TEST(FaultInjection, CancellationYieldsATypedErrorFrame) {
    ServiceOptions options;
    options.workers = 1;
    options.ring_frames = 1;  // the un-popped "accepted" frame parks the worker
    CampaignService service(options);

    // A's ring (capacity 1) already holds "accepted"; the single worker
    // blocks pushing A's first csv frame until we pop — so B is
    // DETERMINISTICALLY still queued when the cancel lands.
    auto a = service.submit(1, kSmallSpec);
    ASSERT_TRUE(a.ok());
    auto b = service.submit(2, kSmallSpec);
    ASSERT_TRUE(b.ok());
    b.value()->cancel();

    const std::vector<Frame> a_frames = drain(a.value());
    ASSERT_GE(a_frames.size(), 3u);
    EXPECT_EQ(a_frames.front().type, "accepted");
    EXPECT_EQ(a_frames.back().type, "done");

    const std::vector<Frame> b_frames = drain(b.value());
    ASSERT_EQ(b_frames.size(), 2u);
    EXPECT_EQ(b_frames[0].type, "accepted");
    ASSERT_EQ(b_frames[1].type, "error");
    EXPECT_EQ(decode_error_payload(b_frames[1].payload).code,
              common::EvalErrorCode::cancelled);
    EXPECT_EQ(service.stats().requests_cancelled, 1u);
}

TEST(FaultInjection, ClientDisconnectMidStreamFreesTheWorker) {
    ServiceOptions options;
    options.workers = 1;
    options.ring_frames = 1;
    options.csv_chunk_bytes = 16;  // force many csv frames
    CampaignService service(options);

    auto doomed = service.submit(1, kSmallSpec);
    ASSERT_TRUE(doomed.ok());
    auto accepted = doomed.value()->pop();
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->type, "accepted");
    // Client vanishes with most of the CSV still unstreamed.
    doomed.value()->abandon();

    // The worker must shake free and serve the next request normally.
    auto next = service.submit(2, kSmallSpec);
    ASSERT_TRUE(next.ok());
    const std::vector<Frame> frames = drain(next.value());
    EXPECT_EQ(frames.back().type, "done");

    // All store references drain once nothing is in flight.
    for (int i = 0; i < 100 && service.store_active_refs() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(service.store_active_refs(), 0u);
}

// --- wire-level faults over a socketpair -------------------------------

struct WireClient {
    int fd = -1;

    ~WireClient() { close_fd(); }

    void close_fd() {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

    void send(const Frame& frame) const {
        const std::string bytes = encode_frame(frame);
        ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
    }

    void send_raw(const std::string& bytes) const {
        ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
    }

    /// Reads one frame; false on EOF.
    bool receive(Frame& frame) const {
        std::string line;
        char ch = 0;
        for (;;) {
            const ssize_t n = ::read(fd, &ch, 1);
            if (n <= 0) {
                return false;
            }
            if (ch == '\n') {
                break;
            }
            line.push_back(ch);
        }
        auto length = parse_frame_header(line, frame);
        if (!length.ok()) {
            return false;
        }
        frame.payload.resize(length.value());
        std::size_t done = 0;
        while (done < length.value()) {
            const ssize_t n =
                ::read(fd, frame.payload.data() + done, length.value() - done);
            if (n <= 0) {
                return false;
            }
            done += static_cast<std::size_t>(n);
        }
        return true;
    }
};

/// serve_fds on one end of a socketpair; the test drives the other end.
struct WireHarness {
    CampaignService service;
    Server server;
    WireClient client;
    std::thread thread;
    int status = -1;

    explicit WireHarness(ServiceOptions options = {})
        : service(options), server(service) {
        int fds[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        client.fd = fds[0];
        thread = std::thread([this, fd = fds[1]] {
            status = server.serve_fds(fd, fd);
            ::close(fd);
        });
        Frame hello;
        EXPECT_TRUE(client.receive(hello));
        EXPECT_EQ(hello.type, "hello");
    }

    ~WireHarness() {
        client.close_fd();
        if (thread.joinable()) {
            thread.join();
        }
    }
};

TEST(WireFaults, MalformedHeaderGetsOneErrorThenClose) {
    WireHarness wire;
    wire.client.send_raw("GET / HTTP/1.1\n");
    Frame frame;
    ASSERT_TRUE(wire.client.receive(frame));
    EXPECT_EQ(frame.type, "error");
    EXPECT_EQ(decode_error_payload(frame.payload).code,
              common::EvalErrorCode::invalid_query);
    EXPECT_FALSE(wire.client.receive(frame));  // connection closed
    wire.client.close_fd();
    wire.thread.join();
    EXPECT_EQ(wire.status, 1);
}

TEST(WireFaults, MalformedPayloadFailsOnlyThatRequest) {
    WireHarness wire;
    wire.client.send(Frame{"campaign", 5, "not a spec"});
    Frame frame;
    ASSERT_TRUE(wire.client.receive(frame));
    EXPECT_EQ(frame.type, "error");
    EXPECT_EQ(frame.id, 5u);

    // The connection survives and still answers.
    wire.client.send(Frame{"ping", 6, "hi"});
    ASSERT_TRUE(wire.client.receive(frame));
    EXPECT_EQ(frame.type, "pong");
    EXPECT_EQ(frame.payload, "hi");
}

TEST(WireFaults, OversizedPayloadIsDrainedAndRejected) {
    ServiceOptions options;
    options.max_request_bytes = 128;
    WireHarness wire(options);
    wire.client.send(Frame{"campaign", 9, std::string(4096, 'x')});
    Frame frame;
    ASSERT_TRUE(wire.client.receive(frame));
    EXPECT_EQ(frame.type, "error");
    EXPECT_EQ(frame.id, 9u);
    EXPECT_NE(decode_error_payload(frame.payload).message.find("request cap"),
              std::string::npos);

    wire.client.send(Frame{"ping", 10, ""});
    ASSERT_TRUE(wire.client.receive(frame));
    EXPECT_EQ(frame.type, "pong");
}

TEST(WireFaults, UnknownFrameTypeIsATypedError) {
    WireHarness wire;
    wire.client.send(Frame{"teleport", 3, ""});
    Frame frame;
    ASSERT_TRUE(wire.client.receive(frame));
    EXPECT_EQ(frame.type, "error");
    EXPECT_NE(decode_error_payload(frame.payload).message.find("unknown frame type"),
              std::string::npos);
}

TEST(WireFaults, CancelForUnknownIdIsATypedError) {
    WireHarness wire;
    wire.client.send(Frame{"cancel", 77, ""});
    Frame frame;
    ASSERT_TRUE(wire.client.receive(frame));
    EXPECT_EQ(frame.type, "error");
    EXPECT_EQ(frame.id, 77u);
}

TEST(WireFaults, DisconnectMidStreamNeverWedgesTheServer) {
    ServiceOptions options;
    options.workers = 1;
    options.ring_frames = 1;
    options.csv_chunk_bytes = 16;
    WireHarness wire(options);
    wire.client.send(Frame{"campaign", 1, kSmallSpec});
    Frame frame;
    ASSERT_TRUE(wire.client.receive(frame));
    EXPECT_EQ(frame.type, "accepted");
    // Hang up with the result mostly unstreamed; the harness destructor
    // joins the server thread — if the disconnect wedged a forwarder or
    // the worker, this test times out instead of passing.
    wire.client.close_fd();
    wire.thread.join();
    EXPECT_EQ(wire.status, 0);
    for (int i = 0; i < 100 && wire.service.store_active_refs() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(wire.service.store_active_refs(), 0u);
}

}  // namespace
}  // namespace gprsim::service
