// Unit coverage of the service building blocks: the frame codec, the
// bounded SPSC ring, the rolling stats reservoir, and the shared warm
// store's leader/follower/promotion protocol. The end-to-end behaviors
// (typed rejections, byte-identity, saturation) live in
// fault_injection_test.cpp and concurrency_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "eval/evaluator.hpp"
#include "service/protocol.hpp"
#include "service/ring.hpp"
#include "service/stats.hpp"
#include "service/warm_store.hpp"

namespace gprsim::service {
namespace {

TEST(Protocol, EncodeParseRoundtrip) {
    const Frame frame{"campaign", 42, "{\"name\": \"x\"}"};
    const std::string bytes = encode_frame(frame);
    const std::size_t newline = bytes.find('\n');
    ASSERT_NE(newline, std::string::npos);

    Frame parsed;
    auto length = parse_frame_header(bytes.substr(0, newline), parsed);
    ASSERT_TRUE(length.ok()) << length.error().message;
    EXPECT_EQ(parsed.type, "campaign");
    EXPECT_EQ(parsed.id, 42u);
    EXPECT_EQ(length.value(), frame.payload.size());
    EXPECT_EQ(bytes.substr(newline + 1), frame.payload);
}

TEST(Protocol, RejectsMalformedHeaders) {
    Frame frame;
    // Wrong magic, missing fields, junk length, oversized length: each a
    // typed invalid_query, never a crash.
    for (const std::string line :
         {"HTTP/1.1 campaign 1 10", "GPRS/1 campaign 1", "GPRS/1 campaign one 10",
          "GPRS/1 campaign 1 ten", "GPRS/1 campaign 1 10 extra", "",
          "GPRS/1 campaign 1 999999999999999"}) {
        auto length = parse_frame_header(line, frame);
        ASSERT_FALSE(length.ok()) << "accepted: " << line;
        EXPECT_EQ(length.error().code, common::EvalErrorCode::invalid_query);
    }
}

TEST(Protocol, ErrorPayloadRoundtripsAndDefaultsUnknownCodes) {
    const common::EvalError error{common::EvalErrorCode::saturated, "queue full"};
    const common::EvalError back = decode_error_payload(encode_error_payload(error));
    EXPECT_EQ(back.code, common::EvalErrorCode::saturated);
    EXPECT_EQ(back.message, "queue full");

    const common::EvalError unknown = decode_error_payload("no_such_code\nboom");
    EXPECT_EQ(unknown.code, common::EvalErrorCode::internal);
    EXPECT_EQ(unknown.message, "boom");
}

TEST(Ring, DeliversInOrderAndDrainsAfterClose) {
    FrameRing ring(2);
    std::thread producer([&ring] {
        for (int i = 0; i < 10; ++i) {
            ASSERT_TRUE(ring.push(Frame{"csv", static_cast<std::uint64_t>(i), ""}));
        }
        ring.close();
    });
    for (int i = 0; i < 10; ++i) {
        auto frame = ring.pop();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->id, static_cast<std::uint64_t>(i));
    }
    EXPECT_FALSE(ring.pop().has_value());  // closed and drained
    producer.join();
}

TEST(Ring, ShutdownUnblocksAndRejectsTheProducer) {
    FrameRing ring(1);
    ASSERT_TRUE(ring.push(Frame{"csv", 0, "full"}));
    std::atomic<bool> rejected{false};
    std::thread producer([&ring, &rejected] {
        // Blocks on the full ring until the consumer abandons, then the
        // frame must be discarded, not delivered.
        rejected = !ring.push(Frame{"csv", 1, "late"});
    });
    ring.shutdown();
    producer.join();
    EXPECT_TRUE(rejected);
    EXPECT_FALSE(ring.push(Frame{"csv", 2, ""}));
    EXPECT_EQ(ring.size(), 0u);  // buffered frames dropped
}

TEST(Stats, CountsAndQuantiles) {
    RollingStats stats(8);
    stats.record_received();
    stats.record_served();
    stats.record_store(true);
    stats.record_store(false);
    stats.record_store(false);
    for (int i = 1; i <= 100; ++i) {
        stats.record_point(static_cast<double>(i));  // reservoir keeps 93..100
    }
    const StatsSnapshot snap = stats.snapshot();
    EXPECT_EQ(snap.requests_received, 1u);
    EXPECT_EQ(snap.requests_served, 1u);
    EXPECT_EQ(snap.points_evaluated, 100u);
    EXPECT_NEAR(snap.store_hit_rate(), 1.0 / 3.0, 1e-12);
    EXPECT_EQ(snap.reservoir_points, 8u);
    EXPECT_GE(snap.p50_point_seconds, 93.0);
    EXPECT_LE(snap.p50_point_seconds, 100.0);
    EXPECT_GE(snap.p99_point_seconds, snap.p50_point_seconds);
    const std::string json = snap.to_json();
    EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_seconds\""), std::string::npos);
}

eval::GridOutcome one_point_outcome(double rate) {
    eval::PointEvaluation point;
    point.wall_seconds = rate;
    return eval::GridOutcome(std::vector<eval::PointEvaluation>{point});
}

TEST(WarmStore, LeaderComputesFollowersCopy) {
    WarmStore store(4);
    bool hit = false;
    WarmStore::Ticket leader = store.acquire("sig", hit);
    EXPECT_FALSE(hit);
    ASSERT_TRUE(leader.leader());

    bool follower_hit = false;
    WarmStore::Ticket follower = store.acquire("sig", follower_hit);
    EXPECT_TRUE(follower_hit);  // join-in-flight counts as a hit
    EXPECT_FALSE(follower.leader());

    std::thread waiter([&follower] {
        auto cached = follower.wait();
        ASSERT_TRUE(cached.has_value());
        ASSERT_TRUE(cached->ok());
        EXPECT_DOUBLE_EQ(cached->value().front().wall_seconds, 1.5);
    });
    leader.publish(one_point_outcome(1.5));
    waiter.join();
    EXPECT_EQ(store.active_refs(), 2u);
}

TEST(WarmStore, AbandonPromotesExactlyOneWaiter) {
    WarmStore store(4);
    bool hit = false;
    WarmStore::Ticket leader = store.acquire("sig", hit);
    WarmStore::Ticket follower_a = store.acquire("sig", hit);
    WarmStore::Ticket follower_b = store.acquire("sig", hit);

    std::atomic<int> promoted{0};
    std::atomic<int> served{0};
    auto follow = [&promoted, &served](WarmStore::Ticket& ticket) {
        auto cached = ticket.wait();
        if (!cached.has_value()) {
            // Promoted: now responsible for the slice.
            ASSERT_TRUE(ticket.leader());
            ++promoted;
            ticket.publish(one_point_outcome(2.0));
        } else {
            ASSERT_TRUE(cached->ok());
            ++served;
        }
    };
    std::thread ta(follow, std::ref(follower_a));
    std::thread tb(follow, std::ref(follower_b));
    leader.abandon();
    ta.join();
    tb.join();
    EXPECT_EQ(promoted.load(), 1);
    EXPECT_EQ(served.load(), 1);
}

TEST(WarmStore, RefsDrainAndIdleEntriesEvict) {
    WarmStore store(2);
    for (int i = 0; i < 5; ++i) {
        bool hit = false;
        WarmStore::Ticket ticket = store.acquire("sig" + std::to_string(i), hit);
        EXPECT_FALSE(hit);
        ticket.publish(one_point_outcome(1.0));
    }
    EXPECT_EQ(store.active_refs(), 0u);
    EXPECT_LE(store.entries(), 2u);

    // The retained entries still serve hits.
    bool hit = false;
    WarmStore::Ticket ticket = store.acquire("sig4", hit);
    EXPECT_TRUE(hit);
    auto cached = ticket.wait();
    ASSERT_TRUE(cached.has_value());
    EXPECT_TRUE(cached->ok());
}

TEST(WarmStore, DroppedLeaderTicketAbandonsImplicitly) {
    WarmStore store(4);
    bool hit = false;
    WarmStore::Ticket follower;
    {
        WarmStore::Ticket leader = store.acquire("sig", hit);
        follower = store.acquire("sig", hit);
        // Leader destroyed without publish: the follower must be promoted,
        // not deadlocked.
    }
    auto cached = follower.wait();
    EXPECT_FALSE(cached.has_value());
    EXPECT_TRUE(follower.leader());
}

TEST(WarmStore, SignatureSeparatesEveryAxis) {
    eval::ScenarioQuery query;
    const std::vector<double> rates{0.5, 1.0};
    const std::string base = slice_signature("ctmc", query, rates, true, 0);
    EXPECT_NE(base, slice_signature("des", query, rates, true, 0));
    EXPECT_NE(base, slice_signature("ctmc", query, {0.5}, true, 0));
    EXPECT_NE(base, slice_signature("ctmc", query, rates, false, 0));
    EXPECT_NE(base, slice_signature("ctmc", query, rates, true, 2));

    eval::ScenarioQuery changed = query;
    changed.simulation.seed = 7;
    EXPECT_NE(base, slice_signature("ctmc", changed, rates, true, 0));
    changed = query;
    changed.parameters.gprs_fraction = 0.2;
    EXPECT_NE(base, slice_signature("ctmc", changed, rates, true, 0));
    EXPECT_EQ(base, slice_signature("ctmc", query, rates, true, 0));
}

}  // namespace
}  // namespace gprsim::service
