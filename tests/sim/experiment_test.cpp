// ExperimentEngine: replication sharding must never change the numbers —
// pooled measures are bitwise invariant to the thread count — and the
// replication-level confidence intervals must behave like independent
// replications (width shrinking ~1/sqrt(N), disjoint substreams).
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <set>
#include <vector>

#include "sim/experiment.hpp"

namespace gprsim::sim {
namespace {

/// Downsized cell so one replication runs in milliseconds.
ExperimentConfig small_experiment(int replications) {
    ExperimentConfig config;
    core::Parameters& p = config.base.cell;
    p.total_channels = 6;
    p.reserved_pdch = 1;
    p.buffer_capacity = 15;
    p.max_gprs_sessions = 5;
    p.call_arrival_rate = 0.25;
    p.gprs_fraction = 0.3;
    p.mean_gsm_call_duration = 60.0;
    p.mean_gsm_dwell_time = 60.0;
    p.mean_gprs_dwell_time = 60.0;
    p.traffic.mean_packet_calls = 4.0;
    p.traffic.mean_packets_per_call = 8.0;
    p.traffic.mean_packet_interarrival = 0.4;
    p.traffic.mean_reading_time = 4.0;
    config.base.tcp_enabled = false;
    config.base.warmup_time = 100.0;
    config.base.batch_count = 3;
    config.base.batch_duration = 150.0;
    config.replications = replications;
    config.seed = 91;
    return config;
}

void expect_bitwise_equal(const MetricEstimate& a, const MetricEstimate& b) {
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.half_width, b.half_width);
    EXPECT_EQ(a.batches, b.batches);
}

TEST(ExperimentEngine, PooledMeasuresAreBitwiseThreadCountInvariant) {
    ExperimentConfig config = small_experiment(5);
    ExperimentEngine engine;

    config.num_threads = 1;
    const ExperimentResults serial = engine.run(config);
    for (int threads : {2, 8}) {
        config.num_threads = threads;
        const ExperimentResults sharded = engine.run(config);
        SCOPED_TRACE(threads);
        expect_bitwise_equal(sharded.carried_data_traffic, serial.carried_data_traffic);
        expect_bitwise_equal(sharded.packet_loss_probability,
                             serial.packet_loss_probability);
        expect_bitwise_equal(sharded.queueing_delay, serial.queueing_delay);
        expect_bitwise_equal(sharded.throughput_per_user_kbps,
                             serial.throughput_per_user_kbps);
        expect_bitwise_equal(sharded.mean_queue_length, serial.mean_queue_length);
        expect_bitwise_equal(sharded.carried_voice_traffic, serial.carried_voice_traffic);
        expect_bitwise_equal(sharded.average_gprs_sessions, serial.average_gprs_sessions);
        expect_bitwise_equal(sharded.gsm_blocking, serial.gsm_blocking);
        expect_bitwise_equal(sharded.gprs_blocking, serial.gprs_blocking);
        EXPECT_EQ(sharded.events_executed, serial.events_executed);
        ASSERT_EQ(sharded.replications.size(), serial.replications.size());
        for (std::size_t r = 0; r < serial.replications.size(); ++r) {
            EXPECT_EQ(sharded.replications[r].events_executed,
                      serial.replications[r].events_executed);
            EXPECT_EQ(sharded.replications[r].carried_data_traffic.mean,
                      serial.replications[r].carried_data_traffic.mean);
        }
    }
}

TEST(ExperimentEngine, ReplicationsRunOnDisjointSubstreams) {
    const ExperimentConfig config = small_experiment(4);
    const ExperimentResults results = ExperimentEngine().run(config);
    // Every replication sees a different trajectory: identical event counts
    // or identical means across replications would indicate stream reuse.
    std::set<std::uint64_t> event_counts;
    for (const SimulationResults& r : results.replications) {
        event_counts.insert(r.events_executed);
    }
    EXPECT_EQ(event_counts.size(), results.replications.size());
}

TEST(ExperimentEngine, ConfidenceIntervalShrinksLikeRootN) {
    ExperimentEngine engine;
    const ExperimentResults few = engine.run(small_experiment(6));
    const ExperimentResults many = engine.run(small_experiment(24));

    ASSERT_EQ(few.carried_data_traffic.batches, 6);
    ASSERT_EQ(many.carried_data_traffic.batches, 24);
    ASSERT_GT(few.carried_data_traffic.half_width, 0.0);
    // 4x the replications: expect roughly half the width. The Student-t
    // quantile also tightens with dof, so the ratio may undershoot 1/2;
    // the band just excludes "no shrinkage" and "collapse to zero".
    const double ratio =
        many.carried_data_traffic.half_width / few.carried_data_traffic.half_width;
    EXPECT_GT(ratio, 0.15);
    EXPECT_LT(ratio, 0.85);
}

TEST(ExperimentEngine, ProgressReportsEveryReplication) {
    ExperimentConfig config = small_experiment(4);
    config.num_threads = 2;
    std::mutex mutex;
    std::vector<int> seen;
    config.progress = [&](int replication, const SimulationResults& result) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(replication);
        EXPECT_GT(result.events_executed, 0u);
    };
    ExperimentEngine().run(config);
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(std::set<int>(seen.begin(), seen.end()).size(), 4u);
}

TEST(ExperimentEngine, RejectsNonPositiveReplicationCount) {
    ExperimentConfig config = small_experiment(0);
    EXPECT_THROW(ExperimentEngine().run(config), std::invalid_argument);
}

TEST(ExperimentEngine, SharedPoolIsUsedAsIs) {
    common::ThreadPool pool(3);
    ExperimentEngine engine(&pool);
    EXPECT_EQ(&engine.pool(1), &pool);
    EXPECT_EQ(&engine.pool(8), &pool);  // shared pools are never resized
    ExperimentConfig config = small_experiment(3);
    config.num_threads = 3;
    const ExperimentResults results = engine.run(config);
    EXPECT_EQ(results.threads_used, 3);
    EXPECT_EQ(results.replications.size(), 3u);
}

}  // namespace
}  // namespace gprsim::sim
