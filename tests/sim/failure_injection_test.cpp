// Failure-path tests for the network simulator: forced call terminations at
// handover, buffer exhaustion, and sessions dropped mid-transfer must all be
// handled and accounted without corrupting the run.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace gprsim::sim {
namespace {

TEST(FailureInjection, HandoverIntoFullCellsDropsCalls) {
    // Tiny cells under heavy voice load: handovers frequently target a full
    // cell, forcing terminations. The run must complete and report them.
    SimulationConfig config;
    config.cell.total_channels = 2;
    config.cell.reserved_pdch = 1;  // leaves a single voice channel
    config.cell.buffer_capacity = 5;
    config.cell.max_gprs_sessions = 2;
    config.cell.call_arrival_rate = 0.5;
    config.cell.gprs_fraction = 0.1;
    config.cell.mean_gsm_call_duration = 120.0;
    config.cell.mean_gsm_dwell_time = 20.0;  // fast mobility: many handovers
    config.cell.mean_gprs_dwell_time = 20.0;
    config.cell.traffic.mean_packet_calls = 2.0;
    config.cell.traffic.mean_packets_per_call = 5.0;
    config.cell.traffic.mean_packet_interarrival = 0.5;
    config.cell.traffic.mean_reading_time = 5.0;
    config.seed = 11;
    config.warmup_time = 200.0;
    config.batch_count = 5;
    config.batch_duration = 400.0;

    const SimulationResults results = NetworkSimulator(config).run();
    EXPECT_GT(results.gsm_blocked, 0);
    EXPECT_GT(results.gsm_handover_failures, 0);
    // Blocking estimate reflects the pressure.
    EXPECT_GT(results.gsm_blocking.mean, 0.3);
}

TEST(FailureInjection, SessionDropsDiscardTheirBufferedPackets) {
    // GPRS sessions bounce between cells with M = 1: most handovers fail,
    // dropping sessions with packets still queued. The queue accounting
    // must stay consistent (no negative lengths, run completes).
    SimulationConfig config;
    config.cell.total_channels = 3;
    config.cell.reserved_pdch = 1;
    config.cell.buffer_capacity = 8;
    config.cell.max_gprs_sessions = 1;
    config.cell.call_arrival_rate = 0.3;
    config.cell.gprs_fraction = 0.6;
    config.cell.mean_gprs_dwell_time = 10.0;  // sessions rarely finish in place
    config.cell.traffic.mean_packet_calls = 5.0;
    config.cell.traffic.mean_packets_per_call = 20.0;
    config.cell.traffic.mean_packet_interarrival = 0.1;
    config.cell.traffic.mean_reading_time = 2.0;
    config.tcp_enabled = true;
    config.seed = 13;
    config.warmup_time = 200.0;
    config.batch_count = 5;
    config.batch_duration = 400.0;

    const SimulationResults results = NetworkSimulator(config).run();
    EXPECT_GT(results.gprs_handover_failures, 0);
    EXPECT_GT(results.gprs_blocked, 0);
    EXPECT_GE(results.mean_queue_length.mean, 0.0);
    EXPECT_LE(results.mean_queue_length.mean, config.cell.buffer_capacity);
}

TEST(FailureInjection, ZeroWiredDelayAndTinyFramesWork) {
    // Degenerate path parameters must not break event ordering.
    SimulationConfig config;
    config.cell.total_channels = 3;
    config.cell.reserved_pdch = 1;
    config.cell.buffer_capacity = 5;
    config.cell.max_gprs_sessions = 2;
    config.cell.call_arrival_rate = 0.2;
    config.cell.gprs_fraction = 0.3;
    config.cell.traffic.mean_packet_calls = 2.0;
    config.cell.traffic.mean_packets_per_call = 5.0;
    config.cell.traffic.mean_packet_interarrival = 0.4;
    config.cell.traffic.mean_reading_time = 4.0;
    config.wired_delay = 0.0;
    config.frame_duration = 0.005;
    config.seed = 17;
    config.warmup_time = 100.0;
    config.batch_count = 3;
    config.batch_duration = 300.0;

    const SimulationResults results = NetworkSimulator(config).run();
    EXPECT_GT(results.packets_delivered, 0);
}

TEST(FailureInjection, NoForwardingPolicyDropsOnHandover) {
    // With forwarding disabled, every session handover discards queued
    // packets; the run must stay consistent and TCP must recover.
    SimulationConfig config;
    config.cell.total_channels = 4;
    config.cell.reserved_pdch = 1;
    config.cell.buffer_capacity = 10;
    config.cell.max_gprs_sessions = 3;
    config.cell.call_arrival_rate = 0.3;
    config.cell.gprs_fraction = 0.4;
    config.cell.mean_gprs_dwell_time = 15.0;
    config.cell.traffic.mean_packet_calls = 4.0;
    config.cell.traffic.mean_packets_per_call = 10.0;
    config.cell.traffic.mean_packet_interarrival = 0.15;
    config.cell.traffic.mean_reading_time = 3.0;
    config.forward_buffer_on_handover = false;
    config.tcp_enabled = true;
    config.seed = 19;
    config.warmup_time = 200.0;
    config.batch_count = 5;
    config.batch_duration = 300.0;

    const SimulationResults results = NetworkSimulator(config).run();
    EXPECT_GT(results.packets_delivered, 0);
    EXPECT_GT(results.tcp_timeouts + results.tcp_fast_retransmits, 0)
        << "dropped buffers must surface as TCP recoveries";
}

}  // namespace
}  // namespace gprsim::sim
