#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/handover.hpp"
#include "queueing/erlang.hpp"

namespace gprsim::sim {
namespace {

/// Downsized cell so the simulator reaches steady state quickly.
SimulationConfig fast_config() {
    SimulationConfig config;
    config.cell.total_channels = 4;
    config.cell.reserved_pdch = 1;
    config.cell.buffer_capacity = 10;
    config.cell.max_gprs_sessions = 3;
    config.cell.call_arrival_rate = 0.15;
    config.cell.gprs_fraction = 0.2;
    config.cell.mean_gsm_call_duration = 60.0;
    config.cell.mean_gsm_dwell_time = 60.0;
    config.cell.mean_gprs_dwell_time = 60.0;
    config.cell.traffic.mean_packet_calls = 3.0;
    config.cell.traffic.mean_packets_per_call = 10.0;
    config.cell.traffic.mean_packet_interarrival = 0.25;
    config.cell.traffic.mean_reading_time = 5.0;
    config.seed = 7;
    config.warmup_time = 500.0;
    config.batch_count = 10;
    config.batch_duration = 500.0;
    return config;
}

TEST(NetworkSimulator, RunsToCompletionAndProducesEstimates) {
    SimulationConfig config = fast_config();
    NetworkSimulator simulator(config);
    const SimulationResults results = simulator.run();

    EXPECT_GT(results.events_executed, 1000u);
    EXPECT_NEAR(results.simulated_time,
                config.warmup_time + config.batch_count * config.batch_duration, 1e-9);
    EXPECT_EQ(results.carried_data_traffic.batches, config.batch_count);
    EXPECT_GT(results.packets_offered, 0);
    EXPECT_GT(results.packets_delivered, 0);
    EXPECT_GE(results.carried_data_traffic.mean, 0.0);
    EXPECT_LE(results.carried_data_traffic.mean, config.cell.total_channels);
    EXPECT_GE(results.packet_loss_probability.mean, 0.0);
    EXPECT_LE(results.packet_loss_probability.mean, 1.0);
    EXPECT_GT(results.average_gprs_sessions.mean, 0.0);
}

TEST(NetworkSimulator, ReproducibleWithSameSeed) {
    const SimulationResults a = NetworkSimulator(fast_config()).run();
    const SimulationResults b = NetworkSimulator(fast_config()).run();
    EXPECT_EQ(a.packets_offered, b.packets_offered);
    EXPECT_EQ(a.packets_delivered, b.packets_delivered);
    EXPECT_DOUBLE_EQ(a.carried_data_traffic.mean, b.carried_data_traffic.mean);
}

TEST(NetworkSimulator, DifferentSeedsDiffer) {
    SimulationConfig other = fast_config();
    other.seed = 8;
    const SimulationResults a = NetworkSimulator(fast_config()).run();
    const SimulationResults b = NetworkSimulator(other).run();
    EXPECT_NE(a.packets_offered, b.packets_offered);
}

TEST(NetworkSimulator, GsmBlockingMatchesErlangWithBalancedHandover) {
    // With almost no data traffic the voice side is an M/M/c/c system with
    // handover flows — the simulated blocking must match the closed form of
    // paper Eq. 2-4 (this is the simulator's own validation experiment).
    SimulationConfig config = fast_config();
    config.cell.total_channels = 4;
    config.cell.reserved_pdch = 1;
    config.cell.call_arrival_rate = 0.1;  // rho ~ 3.2 on 3 channels: real blocking
    config.cell.gprs_fraction = 0.01;
    config.tcp_enabled = false;
    config.warmup_time = 2000.0;
    config.batch_count = 20;
    config.batch_duration = 2000.0;

    const SimulationResults results = NetworkSimulator(config).run();
    const core::BalancedTraffic balanced = core::balance_handover(config.cell);
    const double erlang_blocking =
        queueing::erlang_b(balanced.gsm.offered_load, config.cell.gsm_channels());

    // Within 3 half-widths (the CI is random; 3 sigma keeps the test stable).
    EXPECT_NEAR(results.gsm_blocking.mean, erlang_blocking,
                3.0 * results.gsm_blocking.half_width + 0.01);
    // Carried voice traffic likewise.
    const double carried =
        queueing::mmcc_carried_load(balanced.gsm.offered_load, config.cell.gsm_channels());
    EXPECT_NEAR(results.carried_voice_traffic.mean, carried,
                3.0 * results.carried_voice_traffic.half_width + 0.05);
}

TEST(NetworkSimulator, OpenLoopOverloadLosesPackets) {
    // Saturate a tiny buffer without flow control: losses must appear.
    SimulationConfig config = fast_config();
    config.tcp_enabled = false;
    config.cell.buffer_capacity = 3;
    config.cell.call_arrival_rate = 0.4;
    config.cell.gprs_fraction = 0.5;
    config.cell.traffic.mean_packet_interarrival = 0.05;  // 76.8 kbit/s bursts
    const SimulationResults results = NetworkSimulator(config).run();
    EXPECT_GT(results.packets_dropped, 0);
    EXPECT_GT(results.packet_loss_probability.mean, 0.01);
}

TEST(NetworkSimulator, TcpModeKeepsLossesLowerThanOpenLoop) {
    // The whole point of flow control: same overload, fewer buffer drops.
    SimulationConfig open_loop = fast_config();
    open_loop.cell.buffer_capacity = 5;
    open_loop.cell.call_arrival_rate = 0.4;
    open_loop.cell.gprs_fraction = 0.5;
    open_loop.cell.traffic.mean_packet_interarrival = 0.05;
    open_loop.tcp_enabled = false;

    SimulationConfig tcp = open_loop;
    tcp.tcp_enabled = true;

    const SimulationResults without = NetworkSimulator(open_loop).run();
    const SimulationResults with = NetworkSimulator(tcp).run();
    EXPECT_LT(with.packet_loss_probability.mean, without.packet_loss_probability.mean);
}

TEST(NetworkSimulator, VoicePriorityShrinksDataCapacity) {
    // More voice load with the same data demand must reduce carried data
    // traffic head-room (the preemption mechanism of Section 2).
    SimulationConfig light = fast_config();
    light.cell.call_arrival_rate = 0.05;
    SimulationConfig heavy = fast_config();
    heavy.cell.call_arrival_rate = 0.6;

    const SimulationResults a = NetworkSimulator(light).run();
    const SimulationResults b = NetworkSimulator(heavy).run();
    EXPECT_GT(b.carried_voice_traffic.mean, a.carried_voice_traffic.mean);
    // Per-user throughput suffers under voice pressure.
    EXPECT_LT(b.throughput_per_user_kbps.mean, a.throughput_per_user_kbps.mean * 1.05);
}

TEST(NetworkSimulator, ValidatesConfiguration) {
    SimulationConfig config = fast_config();
    config.num_cells = 1;
    EXPECT_THROW(NetworkSimulator{config}, std::invalid_argument);
    config = fast_config();
    config.batch_count = 1;
    EXPECT_THROW(NetworkSimulator{config}, std::invalid_argument);
    config = fast_config();
    config.frame_duration = 0.0;
    EXPECT_THROW(NetworkSimulator{config}, std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::sim
