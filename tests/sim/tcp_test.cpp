#include "sim/tcp.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "des/simulation.hpp"

namespace gprsim::sim {
namespace {

struct Sent {
    std::int64_t seq;
    bool retransmission;
    double time;
};

struct Harness {
    des::Simulation sim;
    std::vector<Sent> sent;
    TcpConfig config;
    std::unique_ptr<TcpSender> sender;

    explicit Harness(TcpConfig cfg = {}) : config(cfg) {
        sender = std::make_unique<TcpSender>(sim, config,
                                             [this](std::int64_t seq, bool retx) {
                                                 sent.push_back({seq, retx, sim.now()});
                                             });
    }
};

TEST(TcpSender, InitialWindowLimitsTransmission) {
    Harness h;
    h.sender->add_backlog(10);
    // IW = 1: exactly one segment goes out.
    ASSERT_EQ(h.sent.size(), 1u);
    EXPECT_EQ(h.sent[0].seq, 0);
    EXPECT_FALSE(h.sent[0].retransmission);
    EXPECT_EQ(h.sender->backlog(), 9);
    EXPECT_EQ(h.sender->flight_size(), 1);
}

TEST(TcpSender, SlowStartDoublesPerRound) {
    Harness h;
    h.sender->add_backlog(100);
    ASSERT_EQ(h.sent.size(), 1u);
    // Round 1: ack seq 0 -> cwnd 2, two segments out.
    h.sender->on_ack(1);
    EXPECT_EQ(h.sent.size(), 3u);
    EXPECT_DOUBLE_EQ(h.sender->cwnd(), 2.0);
    // Round 2: ack both -> cwnd 4.
    h.sender->on_ack(3);
    EXPECT_DOUBLE_EQ(h.sender->cwnd(), 4.0);
    EXPECT_EQ(h.sent.size(), 7u);
}

TEST(TcpSender, CongestionAvoidanceGrowsLinearly) {
    TcpConfig cfg;
    cfg.initial_ssthresh = 2.0;
    Harness h(cfg);
    h.sender->add_backlog(100);
    h.sender->on_ack(1);  // cwnd: 1 -> 2 (hits ssthresh)
    EXPECT_DOUBLE_EQ(h.sender->cwnd(), 2.0);
    h.sender->on_ack(2);  // CA: 2 + 1/2 = 2.5
    EXPECT_DOUBLE_EQ(h.sender->cwnd(), 2.5);
    h.sender->on_ack(3);  // 2.5 + 1/2.5 = 2.9
    EXPECT_NEAR(h.sender->cwnd(), 2.9, 1e-12);
}

TEST(TcpSender, TripleDupAckTriggersFastRetransmit) {
    TcpConfig cfg;
    cfg.initial_ssthresh = 64.0;
    Harness h(cfg);
    h.sender->add_backlog(20);
    h.sender->on_ack(1);
    h.sender->on_ack(3);
    h.sender->on_ack(7);  // cwnd 8, flight 8 (seqs 7..14)
    const std::size_t before = h.sent.size();
    EXPECT_EQ(h.sender->fast_retransmits(), 0);

    // Three duplicate ACKs for 7.
    h.sender->on_ack(7);
    h.sender->on_ack(7);
    EXPECT_FALSE(h.sender->in_fast_recovery());
    h.sender->on_ack(7);
    EXPECT_TRUE(h.sender->in_fast_recovery());
    EXPECT_EQ(h.sender->fast_retransmits(), 1);
    ASSERT_GT(h.sent.size(), before);
    EXPECT_EQ(h.sent[before].seq, 7);
    EXPECT_TRUE(h.sent[before].retransmission);
    // ssthresh = flight/2 = 4; cwnd = ssthresh + 3.
    EXPECT_DOUBLE_EQ(h.sender->ssthresh(), 4.0);
    EXPECT_DOUBLE_EQ(h.sender->cwnd(), 7.0);

    // Full ACK ends recovery and deflates to ssthresh.
    h.sender->on_ack(h.sender->next_seq());
    EXPECT_FALSE(h.sender->in_fast_recovery());
    EXPECT_DOUBLE_EQ(h.sender->cwnd(), 4.0);
}

TEST(TcpSender, TimeoutCollapsesWindowAndBacksOff) {
    TcpConfig cfg;
    cfg.initial_rto = 3.0;
    Harness h(cfg);
    h.sender->add_backlog(5);
    ASSERT_EQ(h.sent.size(), 1u);

    h.sim.run_until(3.5);  // first RTO fires at t=3
    EXPECT_EQ(h.sender->timeouts(), 1);
    ASSERT_EQ(h.sent.size(), 2u);
    EXPECT_EQ(h.sent[1].seq, 0);
    EXPECT_TRUE(h.sent[1].retransmission);
    EXPECT_DOUBLE_EQ(h.sender->cwnd(), 1.0);

    // Exponential backoff: next timeout after 6 s (at t=9).
    h.sim.run_until(8.5);
    EXPECT_EQ(h.sender->timeouts(), 1);
    h.sim.run_until(9.5);
    EXPECT_EQ(h.sender->timeouts(), 2);
}

TEST(TcpSender, RttSamplingSetsRtoFromSmoothedEstimate) {
    TcpConfig cfg;
    cfg.min_rto = 0.2;
    Harness h(cfg);
    h.sender->add_backlog(10);
    h.sim.run_until(0.5);  // 0.5 s of "network latency"
    h.sender->on_ack(1);
    // First sample: srtt = 0.5, rttvar = 0.25, rto = 0.5 + 4*0.25 = 1.5.
    EXPECT_NEAR(h.sender->smoothed_rtt(), 0.5, 1e-12);
    EXPECT_NEAR(h.sender->rto(), 1.5, 1e-12);
}

TEST(TcpSender, AllAckedAfterCompleteTransfer) {
    Harness h;
    h.sender->add_backlog(3);
    EXPECT_FALSE(h.sender->all_acked());
    while (!h.sender->all_acked()) {
        h.sender->on_ack(h.sender->unacked_seq() + 1);
    }
    EXPECT_EQ(h.sender->next_seq(), 3);
    EXPECT_EQ(h.sender->backlog(), 0);
}

TEST(TcpSender, RejectsInvalidUse) {
    Harness h;
    EXPECT_THROW(h.sender->add_backlog(-1), std::invalid_argument);
    h.sender->add_backlog(2);
    EXPECT_THROW(h.sender->on_ack(99), std::logic_error);
    des::Simulation sim;
    EXPECT_THROW(TcpSender(sim, TcpConfig{}, nullptr), std::invalid_argument);
}

TEST(TcpReceiver, InOrderSegmentsAdvanceCumulativeAck) {
    TcpReceiver rx;
    EXPECT_EQ(rx.on_segment(0), 1);
    EXPECT_EQ(rx.on_segment(1), 2);
    EXPECT_EQ(rx.on_segment(2), 3);
    EXPECT_EQ(rx.buffered_out_of_order(), 0u);
}

TEST(TcpReceiver, OutOfOrderProducesDuplicateAcksThenDrains) {
    TcpReceiver rx;
    EXPECT_EQ(rx.on_segment(0), 1);
    // Segment 1 lost; 2, 3, 4 arrive -> dup ACKs "1".
    EXPECT_EQ(rx.on_segment(2), 1);
    EXPECT_EQ(rx.on_segment(3), 1);
    EXPECT_EQ(rx.on_segment(4), 1);
    EXPECT_EQ(rx.buffered_out_of_order(), 3u);
    // Retransmitted 1 fills the hole; ack jumps to 5.
    EXPECT_EQ(rx.on_segment(1), 5);
    EXPECT_EQ(rx.buffered_out_of_order(), 0u);
}

TEST(TcpReceiver, StaleSegmentsReAcked) {
    TcpReceiver rx;
    rx.on_segment(0);
    rx.on_segment(1);
    EXPECT_EQ(rx.on_segment(0), 2);  // spurious retransmission
}

TEST(TcpEndToEnd, LossRecoveryDeliversEverything) {
    // Sender and receiver joined by a lossy in-order pipe: every 7th segment
    // of the first transmission wave is dropped. TCP must still deliver all
    // 50 packets, using fast retransmit and/or timeouts.
    des::Simulation sim;
    TcpReceiver rx;
    std::unique_ptr<TcpSender> tx;
    int transmissions = 0;
    const double latency = 0.05;
    TcpConfig cfg;
    cfg.initial_rto = 1.0;
    tx = std::make_unique<TcpSender>(sim, cfg, [&](std::int64_t seq, bool retx) {
        ++transmissions;
        const bool drop = !retx && (seq % 7 == 6);
        if (drop) {
            return;
        }
        sim.schedule(latency, [&, seq] {
            const std::int64_t ack = rx.on_segment(seq);
            sim.schedule(latency, [&, ack] { tx->on_ack(ack); });
        });
    });
    tx->add_backlog(50);
    sim.run_until(300.0);
    EXPECT_TRUE(tx->all_acked());
    EXPECT_EQ(rx.expected_seq(), 50);
    EXPECT_GE(transmissions, 57);  // 50 originals + 7 retransmissions
}

}  // namespace
}  // namespace gprsim::sim
