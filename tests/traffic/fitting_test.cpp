#include "traffic/fitting.hpp"

#include <gtest/gtest.h>

#include "traffic/mmpp.hpp"

namespace gprsim::traffic {
namespace {

TEST(FitIpp, RoundTripsAKnownSource) {
    const Ipp original = traffic_model_2().session.ipp();
    const Mmpp mmpp = ipp_as_mmpp(original);
    const Ipp fitted = fit_ipp(mmpp.mean_arrival_rate(), mmpp.index_of_dispersion(),
                               original.stationary_on_probability());
    EXPECT_NEAR(fitted.on_packet_rate, original.on_packet_rate, 1e-8);
    EXPECT_NEAR(fitted.on_to_off_rate, original.on_to_off_rate, 1e-8);
    EXPECT_NEAR(fitted.off_to_on_rate, original.off_to_on_rate, 1e-8);
}

TEST(FitIpp, FittedProcessReproducesTargetMoments) {
    const double mean = 3.0;
    const double idc = 25.0;
    const double p_on = 0.35;
    const Ipp fitted = fit_ipp(mean, idc, p_on);
    const Mmpp mmpp = ipp_as_mmpp(fitted);
    EXPECT_NEAR(mmpp.mean_arrival_rate(), mean, 1e-10);
    EXPECT_NEAR(mmpp.index_of_dispersion(), idc, 1e-8);
    EXPECT_NEAR(fitted.stationary_on_probability(), p_on, 1e-12);
}

TEST(FitIpp, RejectsInfeasibleTargets) {
    EXPECT_THROW(fit_ipp(0.0, 5.0, 0.5), std::invalid_argument);
    EXPECT_THROW(fit_ipp(1.0, 1.0, 0.5), std::invalid_argument);  // Poisson
    EXPECT_THROW(fit_ipp(1.0, 0.8, 0.5), std::invalid_argument);  // under-dispersed
    EXPECT_THROW(fit_ipp(1.0, 5.0, 0.0), std::invalid_argument);
    EXPECT_THROW(fit_ipp(1.0, 5.0, 1.0), std::invalid_argument);
}

TEST(SessionModelFromIpp, InvertsTheSection3Mapping) {
    const ThreeGppSessionModel original = traffic_model_1().session;
    const ThreeGppSessionModel rebuilt =
        session_model_from_ipp(original.ipp(), original.mean_packet_calls);
    EXPECT_NEAR(rebuilt.mean_packet_interarrival, original.mean_packet_interarrival, 1e-10);
    EXPECT_NEAR(rebuilt.mean_packets_per_call, original.mean_packets_per_call, 1e-8);
    EXPECT_NEAR(rebuilt.mean_reading_time, original.mean_reading_time, 1e-8);
    EXPECT_NEAR(rebuilt.mean_session_duration(), original.mean_session_duration(), 1e-6);
}

TEST(SessionModelFromIpp, FittedWorkloadIsUsableEndToEnd) {
    // Calibrate a synthetic "measured" workload and check it validates.
    const Ipp fitted = fit_ipp(2.5, 40.0, 0.25);
    const ThreeGppSessionModel model = session_model_from_ipp(fitted, 10.0);
    EXPECT_NO_THROW(model.validate());
    EXPECT_GT(model.mean_session_duration(), 0.0);
    // The derived IPP of the rebuilt model matches the fitted source.
    const Ipp back = model.ipp();
    EXPECT_NEAR(back.on_packet_rate, fitted.on_packet_rate, 1e-10);
    EXPECT_NEAR(back.on_to_off_rate, fitted.on_to_off_rate, 1e-10);
    EXPECT_NEAR(back.off_to_on_rate, fitted.off_to_on_rate, 1e-10);
}

}  // namespace
}  // namespace gprsim::traffic
