#include "traffic/ipp.hpp"

#include <gtest/gtest.h>

namespace gprsim::traffic {
namespace {

TEST(Ipp, StationarySplitAndMeanRate) {
    // Mean ON 2 s (a = 0.5), mean OFF 8 s (b = 0.125): P(ON) = 0.2.
    const Ipp source{0.5, 0.125, 10.0};
    EXPECT_NEAR(source.stationary_on_probability(), 0.2, 1e-12);
    EXPECT_NEAR(source.mean_packet_rate(), 2.0, 1e-12);
    EXPECT_NEAR(source.mean_on_time(), 2.0, 1e-12);
    EXPECT_NEAR(source.mean_off_time(), 8.0, 1e-12);
    EXPECT_NEAR(source.burstiness(), 5.0, 1e-12);
}

TEST(Ipp, SymmetricSourceIsHalfOn) {
    const Ipp source{1.0, 1.0, 4.0};
    EXPECT_DOUBLE_EQ(source.stationary_on_probability(), 0.5);
    EXPECT_DOUBLE_EQ(source.burstiness(), 2.0);
}

TEST(Ipp, ValidateRejectsNonPositiveRates) {
    EXPECT_THROW((Ipp{0.0, 1.0, 1.0}).validate(), std::invalid_argument);
    EXPECT_THROW((Ipp{1.0, -1.0, 1.0}).validate(), std::invalid_argument);
    EXPECT_THROW((Ipp{1.0, 1.0, 0.0}).validate(), std::invalid_argument);
    EXPECT_NO_THROW((Ipp{1.0, 1.0, 1.0}).validate());
}

}  // namespace
}  // namespace gprsim::traffic
