#include "traffic/mmpp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "traffic/ipp.hpp"

namespace gprsim::traffic {
namespace {

const Ipp kSource{0.08, 1.0 / 412.0, 8.0};  // traffic-model-2-like IPP

TEST(Mmpp, SingleIppStationaryMatchesClosedForm) {
    const Mmpp mmpp = ipp_as_mmpp(kSource);
    const std::vector<double> pi = mmpp.stationary();
    EXPECT_NEAR(pi[0], kSource.stationary_on_probability(), 1e-12);
    EXPECT_NEAR(mmpp.mean_arrival_rate(), kSource.mean_packet_rate(), 1e-12);
}

TEST(Mmpp, PoissonProcessHasUnitDispersion) {
    // One modulating state = plain Poisson: IDC = 1.
    const Mmpp poisson({0.0}, {5.0});
    EXPECT_NEAR(poisson.index_of_dispersion(), 1.0, 1e-12);
}

TEST(Mmpp, IppDispersionMatchesClosedForm) {
    // For a doubly stochastic Poisson process, Var N(t)/t -> mean_rate +
    // 2 * integral of the rate autocovariance. For the IPP the modulating
    // indicator decays as e^{-(a+b)u}, giving the closed form
    //   IDC(inf) = 1 + 2 lambda_p (1 - P_on) / (a + b).
    const double a = kSource.on_to_off_rate;
    const double b = kSource.off_to_on_rate;
    const double lp = kSource.on_packet_rate;
    const double p_on = b / (a + b);
    const double expected = 1.0 + 2.0 * lp * (1.0 - p_on) / (a + b);

    const Mmpp mmpp = ipp_as_mmpp(kSource);
    const double idc = mmpp.index_of_dispersion();
    EXPECT_GT(idc, 1.0);  // bursty
    EXPECT_NEAR(idc, expected, 1e-9 * expected);
}

TEST(Mmpp, AggregationMatchesKroneckerSuperposition) {
    // The paper's key reduction: m i.i.d. IPPs == one (m+1)-state MMPP.
    // Verify mean rate and index of dispersion for m = 2 and 3 against the
    // brute-force Kronecker superposition (4 and 8 states).
    Mmpp super = ipp_as_mmpp(kSource);
    for (int m = 2; m <= 3; ++m) {
        super = Mmpp::superpose(super, ipp_as_mmpp(kSource));
        const Mmpp aggregated = aggregate_ipps(m, kSource);
        EXPECT_NEAR(aggregated.mean_arrival_rate(), super.mean_arrival_rate(),
                    1e-10 * super.mean_arrival_rate())
            << "m = " << m;
        EXPECT_NEAR(aggregated.index_of_dispersion(), super.index_of_dispersion(), 1e-8)
            << "m = " << m;
    }
}

TEST(Mmpp, AggregateStationaryIsBinomial) {
    const int m = 5;
    const Mmpp aggregated = aggregate_ipps(m, kSource);
    const std::vector<double> pi = aggregated.stationary();
    const double p_off = 1.0 - kSource.stationary_on_probability();
    // P(r sources off) = C(m, r) p_off^r (1-p_off)^(m-r).
    double binom = 1.0;
    for (int r = 0; r <= m; ++r) {
        const double expected = binom * std::pow(p_off, r) * std::pow(1.0 - p_off, m - r);
        EXPECT_NEAR(pi[static_cast<std::size_t>(r)], expected, 1e-12) << "r = " << r;
        binom *= static_cast<double>(m - r) / static_cast<double>(r + 1);
    }
}

TEST(Mmpp, AggregateMeanRateScalesLinearly) {
    const Mmpp one = aggregate_ipps(1, kSource);
    const Mmpp ten = aggregate_ipps(10, kSource);
    EXPECT_NEAR(ten.mean_arrival_rate(), 10.0 * one.mean_arrival_rate(), 1e-9);
}

TEST(Mmpp, ZeroSourcesIsSilent) {
    const Mmpp none = aggregate_ipps(0, kSource);
    EXPECT_EQ(none.num_states(), 1);
    EXPECT_DOUBLE_EQ(none.mean_arrival_rate(), 0.0);
}

TEST(Mmpp, RejectsInvalidConstruction) {
    EXPECT_THROW(Mmpp({}, {}), std::invalid_argument);
    EXPECT_THROW(Mmpp({0.0, 1.0, 2.0}, {1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Mmpp({0.0, -1.0, 1.0, 0.0}, {1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Mmpp({0.0, 1.0, 1.0, 0.0}, {-1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(aggregate_ipps(-1, kSource), std::invalid_argument);
}

}  // namespace
}  // namespace gprsim::traffic
