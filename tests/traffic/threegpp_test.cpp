#include "traffic/threegpp.hpp"

#include <gtest/gtest.h>

namespace gprsim::traffic {
namespace {

TEST(ThreeGpp, TrafficModel1MatchesTable3) {
    const TrafficModelPreset preset = traffic_model_1();
    const ThreeGppSessionModel& s = preset.session;
    EXPECT_EQ(preset.max_gprs_sessions, 50);
    // Paper Table 3: session duration 2122.5 s, packet call 12.5 s,
    // reading time 412 s, source rate ~8 kbit/s.
    EXPECT_NEAR(s.mean_session_duration(), 2122.5, 1e-9);
    EXPECT_NEAR(s.mean_packet_call_duration(), 12.5, 1e-9);
    EXPECT_NEAR(s.mean_reading_time, 412.0, 1e-9);
    EXPECT_NEAR(s.on_rate_kbps(), 7.68, 1e-9);  // 480 byte / 0.5 s; labeled "8"
}

TEST(ThreeGpp, TrafficModel2MatchesTable3) {
    const TrafficModelPreset preset = traffic_model_2();
    const ThreeGppSessionModel& s = preset.session;
    EXPECT_EQ(preset.max_gprs_sessions, 50);
    // Paper Table 3: 2075.6 s session, 3.1 s packet call, 32 kbit/s label.
    EXPECT_NEAR(s.mean_session_duration(), 2075.625, 1e-9);
    EXPECT_NEAR(s.mean_packet_call_duration(), 3.125, 1e-9);
    EXPECT_NEAR(s.on_rate_kbps(), 30.72, 1e-9);  // labeled "32"
}

TEST(ThreeGpp, TrafficModel3MatchesTable3) {
    const TrafficModelPreset preset = traffic_model_3();
    const ThreeGppSessionModel& s = preset.session;
    EXPECT_EQ(preset.max_gprs_sessions, 20);
    // Paper Table 3: 312.5 s session; ON and OFF both 3.1 s.
    EXPECT_NEAR(s.mean_session_duration(), 312.5, 1e-9);
    EXPECT_NEAR(s.mean_packet_call_duration(), 3.125, 1e-9);
    EXPECT_NEAR(s.mean_reading_time, 3.125, 1e-9);
}

TEST(ThreeGpp, IppConversionMatchesSection3) {
    // a = 1/(N_d D_d), b = 1/D_pc, lambda_packet = 1/D_d.
    const ThreeGppSessionModel s = traffic_model_1().session;
    const Ipp ipp = s.ipp();
    EXPECT_NEAR(ipp.on_to_off_rate, 1.0 / 12.5, 1e-12);
    EXPECT_NEAR(ipp.off_to_on_rate, 1.0 / 412.0, 1e-12);
    EXPECT_NEAR(ipp.on_packet_rate, 2.0, 1e-12);
}

TEST(ThreeGpp, SessionVolumeIsCallsTimesPacketsTimesSize) {
    const ThreeGppSessionModel s = traffic_model_1().session;
    // 5 calls x 25 packets x 3840 bits = 480 kbit.
    EXPECT_NEAR(s.mean_session_volume_kbit(), 480.0, 1e-9);
}

TEST(ThreeGpp, SessionDurationFormula) {
    // 1/mu = N_pc (D_pc + N_d D_d) for arbitrary parameters.
    ThreeGppSessionModel s;
    s.mean_packet_calls = 3.0;
    s.mean_reading_time = 10.0;
    s.mean_packets_per_call = 4.0;
    s.mean_packet_interarrival = 2.0;
    EXPECT_NEAR(s.mean_session_duration(), 3.0 * (10.0 + 8.0), 1e-12);
}

TEST(ThreeGpp, ValidateRejectsDegenerateModels) {
    ThreeGppSessionModel s = traffic_model_1().session;
    s.mean_packet_calls = 0.5;  // fewer than one packet call per session
    EXPECT_THROW(s.validate(), std::invalid_argument);

    s = traffic_model_1().session;
    s.mean_packets_per_call = 0.0;
    EXPECT_THROW(s.validate(), std::invalid_argument);

    s = traffic_model_1().session;
    s.mean_reading_time = -1.0;
    EXPECT_THROW(s.validate(), std::invalid_argument);

    EXPECT_NO_THROW(traffic_model_1().session.validate());
    EXPECT_NO_THROW(traffic_model_2().session.validate());
    EXPECT_NO_THROW(traffic_model_3().session.validate());
}

}  // namespace
}  // namespace gprsim::traffic
