// Trace ingestion + fitting roundtrip: synthesize an arrival trace from a
// known IPP, ingest it, and recover mean rate / index of dispersion /
// ON-probability within tolerance; the checked-in golden fixture
// (tests/traffic/data/ipp_tm1.trace, generated from traffic model 1's
// source parameters) pins the full file->fit path; degenerate traces are
// rejected with typed errors, never exceptions.
#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>

#include "traffic/fitting.hpp"
#include "traffic/mmpp.hpp"

namespace gprsim::traffic {
namespace {

std::string fixture_path() {
    return std::string(GPRSIM_SOURCE_DIR) + "/tests/traffic/data/ipp_tm1.trace";
}

/// Portable deterministic IPP sampler: xorshift64* uniforms through the
/// inverse-CDF exponential, so the synthetic trace is identical across
/// compilers and standard libraries (std::exponential_distribution is
/// implementation-defined).
class IppSampler {
public:
    IppSampler(const Ipp& ipp, std::uint64_t seed) : ipp_(ipp), state_(seed | 1) {}

    ArrivalTrace sample(double horizon) {
        ArrivalTrace trace;
        double t = 0.0;
        bool on = false;
        while (t < horizon) {
            if (on) {
                const double to_packet = exponential(ipp_.on_packet_rate);
                const double to_off = exponential(ipp_.on_to_off_rate);
                if (to_packet < to_off) {
                    t += to_packet;
                    if (t >= horizon) break;
                    trace.timestamps.push_back(t);
                } else {
                    t += to_off;
                    on = false;
                }
            } else {
                t += exponential(ipp_.off_to_on_rate);
                on = true;
            }
        }
        return trace;
    }

private:
    double uniform() {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        const std::uint64_t bits = state_ * 0x2545F4914F6CDD1DULL;
        return (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
    }
    double exponential(double rate) { return -std::log(uniform()) / rate; }

    Ipp ipp_;
    std::uint64_t state_;
};

TEST(TraceRead, ParsesTimestampsCommentsAndBlanks) {
    std::istringstream in(
        "# capture header\n"
        "0.5\n"
        "\n"
        "  1.25  # inline comment\n"
        "3.0\n");
    auto trace = read_trace(in);
    ASSERT_TRUE(trace.ok());
    ASSERT_EQ(trace.value().size(), 3u);
    EXPECT_DOUBLE_EQ(trace.value().timestamps[1], 1.25);
    EXPECT_DOUBLE_EQ(trace.value().duration(), 2.5);
}

TEST(TraceRead, RejectsGarbageWithLineNumbers) {
    std::istringstream in("0.5\nbogus\n");
    auto trace = read_trace(in, "cap.txt");
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.error().code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(trace.error().message.find("cap.txt:2"), std::string::npos)
        << trace.error().message;
}

TEST(TraceRead, RejectsNonMonotonicTimestamps) {
    std::istringstream in("1.0\n2.0\n1.5\n");
    auto trace = read_trace(in);
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.error().code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(trace.error().message.find("strictly increasing"), std::string::npos);
}

TEST(TraceRead, MissingFileIsATypedError) {
    auto fitted = fit_trace_file("/nonexistent/capture.trace");
    ASSERT_FALSE(fitted.ok());
    EXPECT_EQ(fitted.error().code, common::EvalErrorCode::invalid_query);
}

TEST(TraceSummary, RejectsDegenerateTraces) {
    // Empty and single-packet traces carry no rate information.
    EXPECT_FALSE(summarize_trace(ArrivalTrace{}).ok());
    EXPECT_FALSE(summarize_trace(ArrivalTrace{{1.0}}).ok());

    // Constant spacing: under-dispersed counts (IDC ~ 0), no IPP matches.
    ArrivalTrace constant;
    for (int i = 0; i < 400; ++i) constant.timestamps.push_back(0.25 * i);
    auto summary = summarize_trace(constant);
    ASSERT_FALSE(summary.ok());
    EXPECT_EQ(summary.error().code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(summary.error().message.find("over-dispersed"), std::string::npos);

    // Over-dispersed but gapless: a density change with no gap beyond the
    // burst threshold leaves the duty cycle unidentifiable. Gaps are exact
    // binary fractions so the sparse gap (1.0) sits strictly below the
    // threshold 10 x median = 1.25 with no accumulation rounding.
    ArrivalTrace gapless;
    double t = 0.0;
    for (int i = 0; i < 50; ++i) gapless.timestamps.push_back(t += 1.0);
    for (int i = 0; i < 500; ++i) gapless.timestamps.push_back(t += 0.125);
    summary = summarize_trace(gapless);
    ASSERT_FALSE(summary.ok());
    EXPECT_EQ(summary.error().code, common::EvalErrorCode::invalid_query);
    EXPECT_NE(summary.error().message.find("no OFF gap"), std::string::npos);

    // Every rejection is a typed error: fit_trace forwards them unchanged.
    EXPECT_FALSE(fit_trace(constant).ok());
}

TEST(TraceRoundtrip, RecoversAKnownIppWithinTolerance) {
    // p_on = 0.2, lambda_p = 5 -> mean rate 1.0 pkt/s; IDC_inf = 33.
    Ipp source;
    source.on_to_off_rate = 0.2;
    source.off_to_on_rate = 0.05;
    source.on_packet_rate = 5.0;
    const double true_rate = source.mean_packet_rate();
    const double true_p_on = source.stationary_on_probability();
    const double true_idc = ipp_as_mmpp(source).index_of_dispersion();

    IppSampler sampler(source, 0x9E3779B97F4A7C15ULL);
    const ArrivalTrace trace = sampler.sample(5000.0);
    ASSERT_GT(trace.size(), 1000u);

    auto fitted = fit_trace(trace);
    ASSERT_TRUE(fitted.ok()) << fitted.error().to_string();
    const FittedTraffic& f = fitted.value();

    EXPECT_NEAR(f.summary.mean_rate, true_rate, 0.05 * true_rate);
    EXPECT_NEAR(f.summary.on_probability, true_p_on, 0.15 * true_p_on);
    // The windowed IDC estimates the asymptotic IDC from below (finite
    // windows truncate the covariance tail), so the tolerance is loose.
    EXPECT_NEAR(f.summary.index_of_dispersion, true_idc, 0.35 * true_idc);
    EXPECT_NEAR(f.ipp.on_packet_rate, source.on_packet_rate,
                0.15 * source.on_packet_rate);

    // The fitted model is exactly self-consistent: its moments reproduce
    // the estimated targets (the fit itself is exact; only the estimates
    // carry sampling error).
    const Mmpp check = ipp_as_mmpp(f.ipp);
    EXPECT_NEAR(check.mean_arrival_rate(), f.summary.mean_rate, 1e-10);
    EXPECT_NEAR(check.index_of_dispersion(), f.summary.index_of_dispersion, 1e-8);
    EXPECT_NEAR(f.ipp.stationary_on_probability(), f.summary.on_probability, 1e-12);
    // And the constructed 3GPP session model wraps the same IPP.
    const Ipp back = f.session.ipp();
    EXPECT_NEAR(back.on_packet_rate, f.ipp.on_packet_rate, 1e-10);
    EXPECT_NEAR(back.on_to_off_rate, f.ipp.on_to_off_rate, 1e-10);
    EXPECT_NEAR(back.off_to_on_rate, f.ipp.off_to_on_rate, 1e-10);
}

TEST(TraceRoundtrip, GoldenFixtureRecoversTrafficModelOneSource) {
    // The checked-in fixture was generated from traffic model 1's Section 3
    // IPP (a = 0.08, b = 1/412, lambda_p = 2) over a 60000 s horizon.
    const Ipp source = traffic_model_1().session.ipp();
    const double true_rate = source.mean_packet_rate();
    const double true_p_on = source.stationary_on_probability();
    const double true_idc = ipp_as_mmpp(source).index_of_dispersion();

    auto fitted = fit_trace_file(fixture_path());
    ASSERT_TRUE(fitted.ok()) << fitted.error().to_string();
    const FittedTraffic& f = fitted.value();

    // Pin the deterministic ingest statistics of the fixed fixture.
    EXPECT_EQ(f.summary.packet_count, 3699u);
    EXPECT_EQ(f.summary.burst_count, 146u);
    EXPECT_EQ(f.summary.window_count, 200);

    // And the recovered source parameters, against the generator's truth.
    EXPECT_NEAR(f.summary.mean_rate, true_rate, 0.10 * true_rate);
    EXPECT_NEAR(f.summary.on_probability, true_p_on, 0.10 * true_p_on);
    EXPECT_NEAR(f.summary.index_of_dispersion, true_idc, 0.25 * true_idc);
    EXPECT_NEAR(f.ipp.on_packet_rate, source.on_packet_rate,
                0.10 * source.on_packet_rate);
    EXPECT_NEAR(f.ipp.on_to_off_rate, source.on_to_off_rate,
                0.30 * source.on_to_off_rate);
    EXPECT_NEAR(f.ipp.off_to_on_rate, source.off_to_on_rate,
                0.30 * source.off_to_on_rate);

    // The campaign-facing preset carries the fitted session and the file's
    // basename in its label.
    EXPECT_EQ(f.preset.name, "trace:ipp_tm1.trace");
    EXPECT_EQ(f.preset.max_gprs_sessions, 50);
    EXPECT_NO_THROW(f.preset.session.validate());
}

}  // namespace
}  // namespace gprsim::traffic
