#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans README.md and every *.md under docs/ for markdown links
[text](target) and inline references to repo paths, and verifies that
each relative target exists. External links (http/https/mailto) and
pure in-page anchors (#...) are ignored; anchors on relative targets are
stripped before the existence check.

Usage: python3 tools/check_docs_links.py [repo_root]
Exit status 1 lists every dead link with file and line number.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_file(md: Path, root: Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(root)}:{lineno}: dead link -> {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
    files = [root / "README.md"] + sorted((root / "docs").glob("**/*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        print(f"error: expected markdown files not found: {missing}", file=sys.stderr)
        return 1
    errors = []
    for md in files:
        errors.extend(check_file(md, root))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"{len(errors)} dead link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
