#!/usr/bin/env python3
"""Minimal gprsim_serve protocol client (stdlib only) for CI smoke tests.

Speaks the GPRS/1 frame protocol (docs/service.md) over a unix socket or a
gprsim_serve --stdio child process.

    serve_client.py --socket=/tmp/gprsim.sock campaign spec.json out.csv
    serve_client.py --stdio=./build/examples/gprsim_serve campaign spec.json out.csv
    serve_client.py --socket=... fit-trace arrivals.trace
    serve_client.py --socket=... stats
    serve_client.py --socket=... ping

`campaign` writes the streamed CSV bytes to the output file (byte-for-byte
what `gprsim_cli campaign --csv=` writes for the same spec) and exits 0 on
a "done" frame, 1 on an "error" frame (printed to stderr).
"""

import argparse
import socket
import subprocess
import sys


class FrameStream:
    """Blocking frame reader/writer over a (read_file, write_file) pair."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    def send(self, ftype, fid, payload=b""):
        if isinstance(payload, str):
            payload = payload.encode()
        header = f"GPRS/1 {ftype} {fid} {len(payload)}\n".encode()
        self.writer.write(header + payload)
        self.writer.flush()

    def receive(self):
        """Returns (type, id, payload) or None on EOF."""
        line = b""
        while not line.endswith(b"\n"):
            byte = self.reader.read(1)
            if not byte:
                return None
            line += byte
        magic, ftype, fid, length = line.decode().split()
        if magic != "GPRS/1":
            raise ValueError(f"bad frame header: {line!r}")
        remaining = int(length)
        payload = b""
        while remaining:
            chunk = self.reader.read(remaining)
            if not chunk:
                raise ValueError("EOF mid-payload")
            payload += chunk
            remaining -= len(chunk)
        return ftype, int(fid), payload

    def expect_hello(self):
        frame = self.receive()
        if frame is None or frame[0] != "hello":
            raise ValueError(f"expected hello, got {frame}")


def run_campaign(stream, spec_path, out_path):
    with open(spec_path, "rb") as spec:
        stream.send("campaign", 1, spec.read())
    csv = b""
    while True:
        frame = stream.receive()
        if frame is None:
            print("connection closed mid-stream", file=sys.stderr)
            return 1
        ftype, _, payload = frame
        if ftype == "accepted":
            continue
        if ftype == "csv":
            csv += payload
        elif ftype == "done":
            with open(out_path, "wb") as out:
                out.write(csv)
            return 0
        elif ftype == "error":
            code, _, message = payload.decode().partition("\n")
            print(f"server error [{code}]: {message}", file=sys.stderr)
            return 1
        else:
            print(f"unexpected frame type: {ftype}", file=sys.stderr)
            return 1


def run_simple(stream, ftype, payload=b""):
    stream.send(ftype, 1, payload)
    frame = stream.receive()
    if frame is None:
        print("connection closed", file=sys.stderr)
        return 1
    rtype, _, rpayload = frame
    print(rpayload.decode())
    if rtype == "error":
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", help="unix socket path of a running gprsim_serve")
    parser.add_argument("--stdio", help="gprsim_serve binary to spawn in --stdio mode")
    parser.add_argument("command", choices=["campaign", "fit-trace", "stats", "ping"])
    parser.add_argument("args", nargs="*")
    options = parser.parse_args()
    if bool(options.socket) == bool(options.stdio):
        parser.error("exactly one of --socket / --stdio is required")

    child = None
    if options.socket:
        connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        connection.connect(options.socket)
        stream = FrameStream(connection.makefile("rb"), connection.makefile("wb"))
    else:
        child = subprocess.Popen(
            [options.stdio, "--stdio"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
        )
        stream = FrameStream(child.stdout, child.stdin)

    stream.expect_hello()
    try:
        if options.command == "campaign":
            if len(options.args) != 2:
                parser.error("campaign needs <spec.json> <out.csv>")
            return run_campaign(stream, options.args[0], options.args[1])
        if options.command == "fit-trace":
            if len(options.args) != 1:
                parser.error("fit-trace needs <arrivals.trace>")
            return run_simple(stream, "fit-trace", options.args[0])
        if options.command == "stats":
            return run_simple(stream, "stats")
        return run_simple(stream, "ping", "smoke")
    finally:
        if child is not None:
            child.stdin.close()
            child.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
